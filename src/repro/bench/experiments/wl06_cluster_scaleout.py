"""wl06: sharded multi-enclave scale-out serving across sockets.

The paper benchmarks one enclave owning one socket; this experiment asks
what the same calibrated cost model implies for a *cluster* of enclaves
(:mod:`repro.cluster`).  Thousands of small tenant streams offer ~1.35x
one socket's saturation throughput, and four arm groups probe the shard
map:

* **scale-out sweep** — the same offered load against 1, 2, 4, and 8
  shards (``1x1`` .. ``2x4``): the single-enclave baseline saturates
  (goodput plateaus below the offered rate, p99 blows through the SLO)
  while the sharded pools sustain >=10k simulated QPS inside it;
* **skew** — a hot tenant worth ~1.6x one shard's capacity: consistent
  hashing pins it to its home shard (hot-shard tail), load-aware routing
  spreads it but pays the UPI-priced cross-socket shuffle on every
  off-home placement — the routing trade, quantified;
* **shard crash** — a mid-window crash of shard 0 with failover on vs
  off: failover re-routes the victims (availability recovers), without
  it every query homed to the dead shard is lost for the outage window;
* **elastic pool** — a diurnal peak over a 2-shard floor: the EDMM-grown
  pool absorbs the peak that a pinned 2-shard pool cannot.

Queries are single-threaded lookup joins (a small dimension build
against a short fact probe) sized so one query is ~1 ms under SGX — the
interactive regime where an SLO is meaningful and routing/queueing, not
operator choice, dominates — while the working set a shuffle must move
is small enough that off-home placement costs ~15 % of service time,
not multiples of it.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.bench.experiments import common, workload_common
from repro.bench.report import ExperimentReport
from repro.cluster import (
    ClusterConfig,
    ClusterFaultPlan,
    ClusterSpec,
    ElasticPolicy,
    ShardFaultKind,
    ShardFaultSpec,
)
from repro.faults import NO_FAULTS
from repro.machine import SimMachine
from repro.trace import Tracer, cluster_breakdown, current_tracer, tee, use_tracer
from repro.workload import (
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)
from repro.workload.jobs import JobKind, JobTemplate, serving_templates

EXPERIMENT_ID = "wl06"
TITLE = "Cluster scale-out: sharded enclaves, routing, failover, elasticity"
PAPER_REFERENCE = "multi-enclave extrapolation of Table 1 + Figs. 3/9"

#: The tenant query: a single-threaded lookup join, ~1 ms under SGX.
#: Its working set (build + probe) is what a shuffle moves when a query
#: runs off its home shard; at this size the UPI-priced transfer is a
#: noticeable tax (~15 % of service), not a dominating one — a pure
#: scan would invert that (the model scans faster than the UPI moves
#: bytes), making any off-home placement a loss.
JOIN_BUILD_MB = 0.25
JOIN_PROBE_MB = 1.0

MIX_WEIGHTS = {"lookup-join": 1.0}

#: Offered load of the sweep and skew groups as a multiple of one
#: socket's (16-core) saturation throughput: past what one enclave can
#: serve, inside what two sockets can.
OVERLOAD_FACTOR = 1.35

#: The shard-count sweep: 1 enclave on 1 socket up to 4 per socket.
SWEEP_SPECS = ("1x1", "2x1", "2x2", "2x4")

#: The serving SLO for the point-scan tenants.
SLO_MS = 25.0

#: Skew group: uniform background plus one hot tenant offering ~1.6x a
#: single 4-core shard's capacity — beyond what its hash-home can serve.
SKEW_BACKGROUND_FRACTION = 0.55
SKEW_HOT_FACTOR = 1.6

#: Crash group: moderate uniform load (still >=10k QPS), shard 0 down
#: for the middle 30 % of the arrival window.
CRASH_LOAD_FRACTION = 0.85
CRASH_START = 0.35
CRASH_END = 0.65
CRASH_SEED = 61

#: Elastic group: a low base with a peak worth 0.75x a socket in the
#: middle third, over a pool that floats between 2 and 8 shards.
BASE_LOAD_FRACTION = 0.25
PEAK_LOAD_FRACTION = 0.75
PEAK_START = 1.0 / 3.0
PEAK_END = 2.0 / 3.0
ELASTIC_FLOOR = 2

#: Tenant-stream counts (background / elastic base / elastic peak).
TENANTS_QUICK = (200, 50, 150)
TENANTS_FULL = (2000, 500, 1500)

#: Queries per arm (sets each group's arrival-window length).
QUERIES_QUICK = 4000
QUERIES_FULL = 20000


def _tenants(
    prefix: str,
    count: int,
    total_qps: float,
    mix: QueryMix,
    *,
    seed0: int = 0,
    start_s: float = 0.0,
    end_s: Optional[float] = None,
) -> Tuple[OpenLoopStream, ...]:
    """``count`` identical tenants splitting ``total_qps`` evenly."""
    return tuple(
        OpenLoopStream(
            f"{prefix}-{i:04d}",
            qps=total_qps / count,
            mix=mix,
            seed=workload_common.stream_seed(seed0 + i),
            start_s=start_s,
            end_s=end_s,
        )
        for i in range(count)
    )


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Latency/goodput/availability of the four cluster arm groups."""
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    catalog = JobCatalog(machine, quick=quick)
    templates = serving_templates()
    templates["lookup-join"] = JobTemplate(
        name="lookup-join",
        kind=JobKind.JOIN,
        threads=1,
        build_bytes=JOIN_BUILD_MB * 1e6,
        probe_bytes=JOIN_PROBE_MB * 1e6,
    )
    engine = ServingEngine(catalog, templates=templates)
    mix = QueryMix.of(MIX_WEIGHTS)
    n_tenants, n_base, n_peak = TENANTS_QUICK if quick else TENANTS_FULL
    queries = QUERIES_QUICK if quick else QUERIES_FULL
    slo_s = SLO_MS * 1e-3

    costs = {
        name: catalog.cost(engine.templates[name], common.SETTING_SGX_IN)
        for name in MIX_WEIGHTS
    }
    cap_socket = workload_common.capacity_qps(costs, MIX_WEIGHTS, cores=16)
    cap_shard = workload_common.capacity_qps(costs, MIX_WEIGHTS, cores=4)
    offered = OVERLOAD_FACTOR * cap_socket

    def scenario(streams, duration_s, cluster) -> WorkloadConfig:
        return WorkloadConfig(
            setting=common.SETTING_SGX_IN,
            open_streams=streams,
            duration_s=duration_s,
            policy="fifo",
            faults=NO_FAULTS,
            planner="static",
            cluster=cluster,
        )

    def serve(label: str, config: WorkloadConfig):
        run_tracer = Tracer(label=f"wl06-{label}")
        with use_tracer(tee(current_tracer(), run_tracer)):
            result = engine.run_cluster(config)
        report.notes.append(f"{label}: {result.describe()}")
        return result, run_tracer

    # --- scale-out sweep: fixed offered load, growing shard count -------
    duration = queries / offered
    uniform = _tenants("tenant", n_tenants, offered, mix)
    for spec_text in SWEEP_SPECS:
        spec = ClusterSpec.parse(spec_text)
        shards = spec.shard_count
        cluster = ClusterConfig(spec=spec)
        result, _ = serve(
            f"sweep-{spec_text}", scenario(uniform, duration, cluster)
        )
        metrics = result.metrics
        for p in workload_common.PERCENTILES:
            report.add(
                "scale-out p%d" % p,
                shards,
                metrics.latency_percentile_s(p) * 1e3,
                "ms",
            )
        report.add("scale-out achieved", shards, metrics.achieved_qps(), "QPS")
        report.add("scale-out goodput", shards, metrics.goodput_qps(), "QPS")
        report.add(
            "scale-out SLO attainment",
            shards,
            metrics.slo_attainment(slo_s),
            "frac",
        )
        report.notes.append(
            workload_common.counters_note(f"sweep-{spec_text}", metrics)
        )

    # --- skew: hot tenant vs routing policy -----------------------------
    hot_qps = SKEW_HOT_FACTOR * cap_shard
    skew_offered = SKEW_BACKGROUND_FRACTION * cap_socket + hot_qps
    skew_duration = queries / skew_offered
    skew_streams = _tenants(
        "tenant", n_tenants, SKEW_BACKGROUND_FRACTION * cap_socket, mix
    ) + (
        OpenLoopStream(
            "hot-tenant",
            qps=hot_qps,
            mix=mix,
            seed=workload_common.stream_seed(n_tenants),
        ),
    )
    spec_2x4 = ClusterSpec.parse("2x4")
    skew_results = {}
    for routing in ("hash", "load-aware"):
        cluster = ClusterConfig(spec=spec_2x4, routing=routing)
        result, run_tracer = serve(
            f"skew-{routing}",
            scenario(skew_streams, skew_duration, cluster),
        )
        metrics = result.metrics
        skew_results[routing] = result
        report.add(
            "skew p99", routing, metrics.latency_percentile_s(99) * 1e3, "ms"
        )
        report.add(
            "skew hot-tenant p99",
            routing,
            metrics.latency_percentile_s(99, stream="hot-tenant") * 1e3,
            "ms",
        )
        report.add(
            "skew SLO attainment", routing, metrics.slo_attainment(slo_s),
            "frac",
        )
        report.add(
            "skew shuffle time", routing, result.shuffle_s, "s"
        )
        report.notes.append(cluster_breakdown(run_tracer).describe())

    # --- shard crash: failover on vs off --------------------------------
    crash_offered = CRASH_LOAD_FRACTION * cap_socket
    crash_duration = queries / crash_offered
    crash_streams = _tenants("tenant", n_tenants, crash_offered, mix)
    crash_plan = ClusterFaultPlan(
        name="wl06-shard-crash",
        seed=CRASH_SEED,
        specs=(
            ShardFaultSpec(
                ShardFaultKind.SHARD_CRASH,
                start_s=CRASH_START * crash_duration,
                end_s=CRASH_END * crash_duration,
                shard=0,
            ),
        ),
    )
    for label, failover in (("failover", True), ("no-failover", False)):
        cluster = ClusterConfig(
            spec=spec_2x4, failover=failover, faults=crash_plan
        )
        result, _ = serve(
            f"crash-{label}",
            scenario(crash_streams, crash_duration, cluster),
        )
        metrics = result.metrics
        report.add("crash availability", label, metrics.availability, "frac")
        report.add(
            "crash p99", label, metrics.latency_percentile_s(99) * 1e3, "ms"
        )
        report.add("crash goodput", label, metrics.goodput_qps(), "QPS")

    # --- elastic pool under a diurnal peak ------------------------------
    base_qps = BASE_LOAD_FRACTION * cap_socket
    peak_qps = PEAK_LOAD_FRACTION * cap_socket
    mean_offered = base_qps + peak_qps * (PEAK_END - PEAK_START)
    elastic_duration = queries / mean_offered
    diurnal = _tenants("base", n_base, base_qps, mix) + _tenants(
        "peak",
        n_peak,
        peak_qps,
        mix,
        seed0=n_base,
        start_s=PEAK_START * elastic_duration,
        end_s=PEAK_END * elastic_duration,
    )
    for label, ceiling in (("elastic", spec_2x4.shard_count),
                           ("static-2", ELASTIC_FLOOR)):
        cluster = ClusterConfig(
            spec=spec_2x4,
            elastic=ElasticPolicy(
                min_shards=ELASTIC_FLOOR,
                max_shards=ceiling,
                interval_s=elastic_duration / 50.0,
            ),
        )
        result, _ = serve(
            label, scenario(diurnal, elastic_duration, cluster)
        )
        metrics = result.metrics
        report.add(
            "elastic p99", label, metrics.latency_percentile_s(99) * 1e3, "ms"
        )
        report.add(
            "elastic SLO attainment", label, metrics.slo_attainment(slo_s),
            "frac",
        )
        report.add("elastic peak shards", label, result.peak_active, "shards")

    # --- headline summary ----------------------------------------------
    base_attain = report.value("scale-out SLO attainment", 1)
    full_attain = report.value("scale-out SLO attainment", 8)
    full_achieved = report.value("scale-out achieved", 8)
    report.notes.append(
        f"offered {offered:.0f} QPS ({OVERLOAD_FACTOR:.2f}x one socket's "
        f"{cap_socket:.0f} QPS): 1 shard attains the {SLO_MS:.0f} ms SLO "
        f"for {base_attain:.0%} of queries (saturated), 8 shards sustain "
        f"{full_achieved:.0f} QPS at {full_attain:.0%} attainment"
    )
    report.notes.append(
        f"crash arm availability: failover "
        f"{report.value('crash availability', 'failover'):.4f} vs "
        f"no-failover "
        f"{report.value('crash availability', 'no-failover'):.4f} "
        f"(shard 0 down {CRASH_START:.0%}-{CRASH_END:.0%} of the window)"
    )
    report.notes.append(
        f"skew: hash hot-tenant p99 "
        f"{report.value('skew hot-tenant p99', 'hash'):.1f} ms vs "
        f"load-aware "
        f"{report.value('skew hot-tenant p99', 'load-aware'):.1f} ms at "
        f"{skew_results['load-aware'].shuffle_s:.2f} s total shuffle "
        f"(hot tenant {hot_qps:.0f} QPS vs one shard's {cap_shard:.0f})"
    )
    return report
