"""Figure 8: RHO and PHT at 16 threads, before/after the optimization.

Expected: the unroll/reorder optimization lifts in-enclave RHO by ~50 %
(to ~83 % of plain CPU) and roughly doubles in-enclave PHT (to ~68 % of
plain, still limited by random main-memory access).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import ParallelHashJoin, RadixJoin
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair

EXPERIMENT_ID = "fig08"
TITLE = "Optimized joins: RHO and PHT, 16 threads, naive vs unrolled"
PAPER_REFERENCE = "Figure 8"

_CASES = (
    ("plain CPU", common.SETTING_PLAIN, CodeVariant.NAIVE),
    ("SGX naive", common.SETTING_SGX_IN, CodeVariant.NAIVE),
    ("SGX optimized", common.SETTING_SGX_IN, CodeVariant.UNROLLED),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Throughput of RHO/PHT under the three Fig. 8 configurations."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for join_cls in (RadixJoin, ParallelHashJoin):
        for case_label, setting, variant in _CASES:

            def measure(seed: int, _cls=join_cls, _set=setting, _var=variant):
                sim = common.make_machine(machine)
                build, probe = generate_join_relation_pair(
                    common.BUILD_BYTES,
                    common.PROBE_BYTES,
                    seed=seed,
                    physical_row_cap=config.row_cap,
                )
                with sim.context(_set, threads=common.SOCKET_THREADS) as ctx:
                    result = _cls(_var).run(ctx, build, probe)
                return common.mrows(result.throughput_rows_per_s(sim.frequency_hz))

            report.add(
                case_label, join_cls.name,
                common.measure_stats(measure, config), "M rows/s",
            )
    for name, target_rel, target_gain in (("RHO", 0.83, 53), ("PHT", 0.68, 94)):
        plain = report.value("plain CPU", name)
        naive = report.value("SGX naive", name)
        opt = report.value("SGX optimized", name)
        report.notes.append(
            f"{name}: optimization +{(opt / naive - 1) * 100:.0f} % "
            f"(paper +{target_gain} %), reaches {opt / plain:.2f} of plain "
            f"(paper {target_rel})"
        )
    return report
