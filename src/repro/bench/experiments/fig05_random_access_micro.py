"""Figure 5: random read/write micro-benchmarks, SGX relative to plain CPU.

Pointer chasing (dependent reads) and LCG-addressed independent writes over
array sizes from cache-resident to 16 GB.  Expected: no penalty in cache;
reads fall to ~53 % relative at 16 GB; writes are worse — ~2x latency at
256 MB and nearly 3x at 8 GB — with a relief bump near the L3 boundary
(paper footnote 2).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.micro import PointerChaseBenchmark, RandomWriteBenchmark
from repro.machine import SimMachine

EXPERIMENT_ID = "fig05"
TITLE = "Random access micro: reads (pointer chase) and writes (LCG)"
PAPER_REFERENCE = "Figure 5"

#: Array sizes swept (bytes): 1 MB (cache) to 16 GB.
ARRAY_BYTES = (1e6, 8e6, 25e6, 64e6, 256e6, 1e9, 8e9, 16e9)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Relative SGX performance of random reads and writes vs array size."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    cap = 1 << (16 if quick else 20)
    for array_bytes in ARRAY_BYTES:

        def measure_read(seed: int, _bytes=array_bytes) -> float:
            bench = PointerChaseBenchmark(_bytes, physical_cap_slots=cap)
            sim = common.make_machine(machine)
            with sim.context(common.SETTING_PLAIN) as ctx:
                plain = bench.run(ctx, seed=seed)
            sim = common.make_machine(machine)
            with sim.context(common.SETTING_SGX_IN) as ctx:
                sgx = bench.run(ctx, seed=seed)
            return plain.cycles / sgx.cycles

        def measure_write(seed: int, _bytes=array_bytes) -> float:
            bench = RandomWriteBenchmark(_bytes, physical_cap_slots=cap)
            sim = common.make_machine(machine)
            with sim.context(common.SETTING_PLAIN) as ctx:
                plain = bench.run(ctx, seed=seed)
            sim = common.make_machine(machine)
            with sim.context(common.SETTING_SGX_IN) as ctx:
                sgx = bench.run(ctx, seed=seed)
            return plain.cycles / sgx.cycles

        report.add(
            "random reads (pointer chase)", array_bytes,
            common.measure_stats(measure_read, config), "x of plain",
        )
        report.add(
            "random writes (LCG)", array_bytes,
            common.measure_stats(measure_write, config), "x of plain",
        )
    report.notes.append(
        "expected: 1.0 in cache; reads -> ~0.53 at 16 GB; writes below 0.5 "
        "(2x at 256 MB, ~3x at 8 GB); relief bump near the 24 MB L3"
    )
    return report
