"""wl04: serving under injected faults — mitigation on vs off.

One serving scenario runs three times under the SGX (data-in-enclave)
setting with identical streams and seeds:

* **baseline** — no faults, no resilience (pinned to
  :data:`~repro.faults.NO_FAULTS`, so a session-level ``--faults`` plan
  cannot contaminate the control arm);
* **faults** — a seeded chaos plan (an AEX storm, mid-service enclave
  crashes, a long EPC squeeze, and a poisoned batch template) with no
  mitigation: crashed and poisoned queries simply fail, and squeezed
  working sets overflow into the Fig. 11 EDMM penalty;
* **mitigated** — the same plan under a :class:`~repro.faults.ResiliencePolicy`:
  failed attempts retry with jittered backoff, a per-tenant circuit
  breaker sheds the poisoned batch stream, attempts are bounded by a
  timeout, and squeezed queries degrade to a reduced EPC reservation
  instead of overflowing.

The EPC budget is sized from a deterministic probe run (the unconstrained
EPC high water of the baseline scenario), so the baseline never overflows
while the squeeze reliably forces the interesting regime.

Expected shape: faults inflate the interactive tenant's p99 by the EDMM
overflow factor and depress goodput/availability (crashes and poison burn
service time and fail); mitigation recovers most of the p99 gap (degraded
admission pays ~1.5x instead of ~10x) and strictly improves goodput —
retries convert crash losses into completions and the breaker stops the
poisoned tenant from burning cores.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.bench.experiments import common, workload_common
from repro.bench.report import ExperimentReport
from repro.faults import (
    NO_FAULTS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
)
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.trace import Tracer, current_tracer, fault_breakdown, tee, use_tracer
from repro.workload import (
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)

EXPERIMENT_ID = "wl04"
TITLE = "Serving under injected faults: resilience on vs off"
PAPER_REFERENCE = "fault-tolerance extension of Fig. 11 / Sec. 6"

#: The interactive tenant's mix (no poisoned template in here).
MIX_WEIGHTS = {"scan-small": 0.55, "join-medium": 0.3, "q12": 0.15}

#: Offered load as a fraction of the mix's serving capacity.
LOAD_FRACTION = 0.7

#: The batch tenant: a low-rate stream of exactly the poisoned template.
BATCH_TEMPLATE = "q3"
BATCH_QPS_FRACTION = 0.05  # of the interactive tenant's offered QPS

#: The probe-measured EPC high water is padded by this factor to set the
#: budget: the baseline arm never overflows, while the squeeze (which
#: multiplies the budget well below 1/PAD) reliably does.
BUDGET_PAD = 1.1

PLAN_SEED = 29


def _chaos_plan(duration_s: float) -> FaultPlan:
    """The wl04 fault plan, windows scaled to the run duration."""
    return FaultPlan(
        name="wl04-chaos",
        seed=PLAN_SEED,
        specs=(
            FaultSpec(
                FaultKind.AEX_STORM,
                start_s=0.05 * duration_s,
                end_s=0.20 * duration_s,
                magnitude=1.6,
            ),
            FaultSpec(
                FaultKind.ENCLAVE_CRASH,
                probability=0.04,
                reinit_s=0.3,
            ),
            FaultSpec(
                FaultKind.EPC_SQUEEZE,
                start_s=0.30 * duration_s,
                end_s=0.70 * duration_s,
                magnitude=0.45,
            ),
            FaultSpec(FaultKind.POISON_JOB, template=BATCH_TEMPLATE),
        ),
    )


def _resilience(costs, duration_s: float) -> ResiliencePolicy:
    """The mitigation arm's policy, its bounds scaled to the scenario."""
    slowest = max(cost.service_s for cost in costs.values())
    return ResiliencePolicy(
        max_retries=3,
        backoff_base_s=0.02,
        backoff_multiplier=2.0,
        jitter=0.5,
        # Generous against legitimate slow services (interference + the
        # storm inflate at most ~2x) yet far below the EDMM collapse, so
        # the timeout also caps how long a poisoned attempt burns cores.
        timeout_s=4.0 * slowest,
        breaker_threshold=4,
        # A quarter of the run: long enough that the poisoned batch tenant
        # stays shed instead of periodically re-probing with full burns.
        breaker_cooldown_s=0.25 * duration_s,
        degrade_on_squeeze=True,
    )


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Latency/goodput/availability of the three arms on one scenario."""
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    catalog = JobCatalog(machine, quick=quick, variant=CodeVariant.NAIVE)
    engine = ServingEngine(catalog)
    mix = QueryMix.of(MIX_WEIGHTS)
    queries = workload_common.target_queries(quick)

    costs = {
        name: catalog.cost(engine.templates[name], common.SETTING_SGX_IN)
        for name in (*MIX_WEIGHTS, BATCH_TEMPLATE)
    }
    capacity = workload_common.capacity_qps(costs, MIX_WEIGHTS, cores=16)
    qps = LOAD_FRACTION * capacity
    duration = queries / qps

    def scenario(**overrides) -> WorkloadConfig:
        config = WorkloadConfig(
            setting=common.SETTING_SGX_IN,
            open_streams=(
                OpenLoopStream(
                    "clients",
                    qps=qps,
                    mix=mix,
                    seed=workload_common.stream_seed(0),
                ),
                OpenLoopStream(
                    "batch",
                    qps=BATCH_QPS_FRACTION * qps,
                    mix=QueryMix.of({BATCH_TEMPLATE: 1.0}),
                    seed=workload_common.stream_seed(1),
                ),
            ),
            duration_s=duration,
            cores=16,
            policy="fifo",
            faults=NO_FAULTS,
        )
        return dataclasses.replace(config, **overrides)

    # Deterministic probe: the scenario's unconstrained EPC high water
    # sizes the budget so only the squeeze forces overflow.
    probe = engine.run(scenario())
    budget = BUDGET_PAD * probe.epc_high_water_bytes
    plan = _chaos_plan(duration)
    arms = (
        ("baseline", NO_FAULTS, None),
        ("faults", plan, None),
        ("mitigated", plan, _resilience(costs, duration)),
    )
    results = {}
    for label, arm_plan, resilience in arms:
        run_tracer = Tracer(label=f"wl04-{label}")
        with use_tracer(tee(current_tracer(), run_tracer)):
            metrics = engine.run(
                scenario(
                    epc_budget_bytes=budget,
                    faults=arm_plan,
                    resilience=resilience,
                )
            )
        results[label] = metrics
        for p in workload_common.PERCENTILES:
            report.add(
                f"{label} latency",
                p,
                metrics.latency_percentile_s(p, stream="clients") * 1e3,
                "ms",
            )
        report.add("goodput", label, metrics.goodput_qps(), "QPS")
        report.add("availability", label, metrics.availability * 100, "%")
        report.notes.append(workload_common.counters_note(label, metrics))
        if arm_plan is not NO_FAULTS:
            report.notes.append(
                f"{label}: {metrics.fault_summary()}"
            )
            report.notes.append(
                f"{label} losses: {fault_breakdown(run_tracer).describe()}"
            )

    base_p99 = report.value("baseline latency", 99)
    fault_p99 = report.value("faults latency", 99)
    mitig_p99 = report.value("mitigated latency", 99)
    gap = fault_p99 - base_p99
    recovered = (fault_p99 - mitig_p99) / gap if gap > 0 else 1.0
    report.notes.append(
        f"clients p99: baseline {base_p99:.0f} ms, faults {fault_p99:.0f} "
        f"ms, mitigated {mitig_p99:.0f} ms — mitigation recovers "
        f"{recovered:.0%} of the fault-induced gap; goodput "
        f"{report.value('goodput', 'faults'):.1f} -> "
        f"{report.value('goodput', 'mitigated'):.1f} QPS, availability "
        f"{report.value('availability', 'faults'):.1f}% -> "
        f"{report.value('availability', 'mitigated'):.1f}%"
    )
    report.notes.append(
        f"plan {plan.name} (seed {plan.seed}): AEX storm 1.6x over "
        f"[{0.05 * duration:.1f}, {0.20 * duration:.1f}) s, crash p=0.04 "
        f"(re-init 0.3 s), EPC squeeze to 45% over [{0.30 * duration:.1f}, "
        f"{0.70 * duration:.1f}) s, template {BATCH_TEMPLATE!r} poisoned; "
        f"budget {budget / 1e9:.2f} GB ({BUDGET_PAD:.1f}x probe high water)"
    )
    return report
