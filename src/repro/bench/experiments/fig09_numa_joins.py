"""Figure 9: RHO join throughput on the NUMA system, worst vs best cases.

Because SGX offers neither NUMA-local allocation nor thread affinity,
enclave placements can degenerate.  Cases measured (all 100 MB x 400 MB):

* *SGX Join Single Node*  — enclave and 16 threads on node 0 (baseline);
* *SGX Join Fully Remote* — enclave memory on node 0, all 16 threads on
  node 1 (expected: ~-25 %);
* *SGX Join Half Local*   — enclave on node 0, all 32 cores join
  (expected: no gain over 16 local threads);
* *Native Join NUMA local* — plain CPU, inputs pre-partitioned on both
  nodes, 16 threads each (expected: ~2x the single-node throughput; every
  SGX case stays below half of it).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import RadixJoin
from repro.exec.placement import Placement
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair

EXPERIMENT_ID = "fig09"
TITLE = "RHO join under NUMA placements (SGX worst cases vs native best)"
PAPER_REFERENCE = "Figure 9"


def _throughput(machine, config, seed, *, setting, data_node, placement_kind):
    sim = common.make_machine(machine)
    if placement_kind == "numa-local-native":
        # Both inputs pre-partitioned across the sockets: each socket joins
        # its half with 16 local threads, concurrently.  One half-size local
        # join provides the wall-clock; throughput counts both halves.
        build, probe = generate_join_relation_pair(
            common.BUILD_BYTES / 2,
            common.PROBE_BYTES / 2,
            seed=seed,
            physical_row_cap=config.row_cap,
        )
        with sim.context(setting, threads=common.SOCKET_THREADS) as ctx:
            result = RadixJoin(CodeVariant.UNROLLED).run(ctx, build, probe)
        seconds = result.seconds(sim.frequency_hz)
        return common.mrows(2 * result.input_rows / seconds)
    build, probe = generate_join_relation_pair(
        common.BUILD_BYTES,
        common.PROBE_BYTES,
        seed=seed,
        physical_row_cap=config.row_cap,
    )
    if placement_kind == "local":
        placement = Placement.on_node(sim.topology, data_node, common.SOCKET_THREADS)
    elif placement_kind == "remote":
        placement = Placement.on_node(
            sim.topology, 1 - data_node, common.SOCKET_THREADS
        )
    elif placement_kind == "all-cores":
        placement = Placement.all_cores(sim.topology)
    else:
        raise ValueError(placement_kind)
    with sim.context(setting, data_node=data_node, placement=placement) as ctx:
        result = RadixJoin(CodeVariant.UNROLLED).run(ctx, build, probe)
    return common.mrows(result.throughput_rows_per_s(sim.frequency_hz))


_CASES = (
    ("SGX Join Single Node", common.SETTING_SGX_IN, "local"),
    ("SGX Join Fully Remote", common.SETTING_SGX_IN, "remote"),
    ("SGX Join Half Local", common.SETTING_SGX_IN, "all-cores"),
    ("Native Join NUMA local", common.SETTING_PLAIN, "numa-local-native"),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Throughput of the four NUMA placement cases."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for label, setting, kind in _CASES:

        def measure(seed: int, _set=setting, _kind=kind) -> float:
            return _throughput(
                machine, config, seed, setting=_set, data_node=0,
                placement_kind=_kind,
            )

        report.add(label, "throughput", common.measure_stats(measure, config),
                   "M rows/s")
    base = report.value("SGX Join Single Node", "throughput")
    remote = report.value("SGX Join Fully Remote", "throughput")
    best = report.value("Native Join NUMA local", "throughput")
    report.notes.append(
        f"fully remote {remote / base - 1:+.0%} vs single node (paper -25 %); "
        f"best SGX case reaches {max(base, remote) / best:.0%} of the native "
        "NUMA-local optimum (paper: < 50 %)"
    )
    return report
