"""Figure 10: task-queue contention — SDK mutex vs lock-free queue.

RHO is forced onto very small partitions (high radix fan-out) so the task
queue becomes contended.  Expected: outside the enclave the queue choice
barely matters; inside the enclave the mutex-guarded queue loses ~75 % of
the lock-free queue's throughput (every contended acquisition triggers an
enclave transition, and the avalanche effect multiplies them), while the
lock-free queue keeps ~90 % of native performance.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import RadixJoin
from repro.enclave.sync import LockKind
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair

EXPERIMENT_ID = "fig10"
TITLE = "RHO with tiny partitions: SDK-mutex vs lock-free task queue"
PAPER_REFERENCE = "Figure 10"

#: High fan-out forcing ~131k tiny join tasks (the contended regime).
CONTENTION_RADIX_BITS = 17

_CASES = (
    ("plain + lock-free queue", common.SETTING_PLAIN, LockKind.LOCK_FREE),
    ("plain + mutex queue", common.SETTING_PLAIN, LockKind.SDK_MUTEX),
    ("SGX + lock-free queue", common.SETTING_SGX_IN, LockKind.LOCK_FREE),
    ("SGX + mutex queue", common.SETTING_SGX_IN, LockKind.SDK_MUTEX),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Throughput of the four setting x queue combinations."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for label, setting, queue_kind in _CASES:

        def measure(seed: int, _set=setting, _queue=queue_kind) -> float:
            sim = common.make_machine(machine)
            build, probe = generate_join_relation_pair(
                common.BUILD_BYTES,
                common.PROBE_BYTES,
                seed=seed,
                physical_row_cap=config.row_cap,
            )
            join = RadixJoin(
                CodeVariant.UNROLLED,
                radix_bits=CONTENTION_RADIX_BITS,
                queue_kind=_queue,
            )
            with sim.context(_set, threads=common.SOCKET_THREADS) as ctx:
                result = join.run(ctx, build, probe)
            return common.mrows(result.throughput_rows_per_s(sim.frequency_hz))

        report.add(label, "throughput", common.measure_stats(measure, config),
                   "M rows/s")
    plain_lf = report.value("plain + lock-free queue", "throughput")
    plain_mx = report.value("plain + mutex queue", "throughput")
    sgx_lf = report.value("SGX + lock-free queue", "throughput")
    sgx_mx = report.value("SGX + mutex queue", "throughput")
    report.notes.append(
        f"plain: mutex/lock-free {plain_mx / plain_lf:.2f} (paper ~1.0); "
        f"SGX: mutex/lock-free {sgx_mx / sgx_lf:.2f} (paper ~0.25); "
        f"SGX lock-free reaches {sgx_lf / plain_lf:.2f} of native (paper ~0.9)"
    )
    return report
