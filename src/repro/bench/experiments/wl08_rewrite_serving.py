"""wl08: serving with learned rewrites under an EPC squeeze.

wl05's squeeze scenario with a TPC-H-heavy mix and one new arm: the
adaptive planner serving with ``--rewrite learned``.  Four runs share
identical streams, seeds, and a pinned EPC-squeeze fault plan; only the
planning stack differs:

* **static** — the historical hardcoded logical+physical plans;
* **adaptive** — the epsilon-greedy selector over the physical
  candidates only (what wl05 ships);
* **adaptive+learned** — the same selector, but the arm set also holds
  each template's proven rewrite winner.  The learned arms matter here
  for their *footprint*, not just their speed: a rewrite that loads
  fewer base tables (or pipelines away its intermediates) keeps fitting
  inside the squeezed EPC while the reference plans overflow into the
  Fig. 11 penalty;
* **oracle** — the per-dispatch physical upper bound (it sees the
  momentary headroom but not the rewrites, so the learned arm can
  legitimately recover *more* than the physical static-to-oracle gap).

The acceptance bar is that adaptive+learned recovers a measurable share
of the clients' p99 gap between static and oracle — and at least as
much as plain adaptive.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.bench.experiments import common, workload_common
from repro.bench.report import ExperimentReport
from repro.faults import NO_FAULTS, FaultKind, FaultPlan, FaultSpec
from repro.machine import SimMachine
from repro.trace import Tracer, current_tracer, tee, use_tracer
from repro.trace.breakdown import rewrite_breakdown
from repro.workload import (
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)
from repro.workload.jobs import JobKind, JobTemplate, serving_templates

EXPERIMENT_ID = "wl08"
TITLE = "Serving with learned rewrites under EPC squeeze"
PAPER_REFERENCE = "serving-layer consequence of the rewrite ablation (ext09)"

#: The TPC-H-heavy mix: the two queries with proven rewrite winners
#: dominate, a small scan keeps the interactive tail honest.
MIX_WEIGHTS = {"q3": 0.45, "q10": 0.35, "scan-small": 0.2}

#: Offered load as a fraction of nominal capacity (see wl05).
LOAD_FRACTION = 0.4

#: Budget pad over the probe run's EPC high water (see wl04/wl05).
BUDGET_PAD = 1.1

#: The squeeze: a co-tenant grabs 65 % of the EPC a quarter into the
#: arrival window and outlives the drain.
SQUEEZE_MAGNITUDE = 0.35
SQUEEZE_START = 0.25
SQUEEZE_END = 4.0

#: Every physical candidate stays available; the learned arm rides on top.
PLAN_TOP_K = 6

PLAN_SEED = 31


def _squeeze_plan(duration_s: float) -> FaultPlan:
    return FaultPlan(
        name="wl08-epc-squeeze",
        seed=PLAN_SEED,
        specs=(
            FaultSpec(
                FaultKind.EPC_SQUEEZE,
                start_s=SQUEEZE_START * duration_s,
                end_s=SQUEEZE_END * duration_s,
                magnitude=SQUEEZE_MAGNITUDE,
            ),
        ),
    )


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Latency/goodput of the four arms on one squeezed TPC-H scenario."""
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    catalog = JobCatalog(machine, quick=quick)
    templates = serving_templates()
    templates["q10"] = JobTemplate(
        name="q10",
        kind=JobKind.TPCH,
        threads=4,
        query="Q10",
        scale_factor=1.0,
    )
    engine = ServingEngine(catalog, templates=templates)
    mix = QueryMix.of(MIX_WEIGHTS)
    queries = workload_common.target_queries(quick)

    costs = {
        name: catalog.cost(engine.templates[name], common.SETTING_SGX_IN)
        for name in MIX_WEIGHTS
    }
    capacity = workload_common.capacity_qps(costs, MIX_WEIGHTS, cores=16)
    qps = LOAD_FRACTION * capacity
    duration = queries / qps

    def scenario(**overrides) -> WorkloadConfig:
        config = WorkloadConfig(
            setting=common.SETTING_SGX_IN,
            open_streams=(
                OpenLoopStream(
                    "clients",
                    qps=qps,
                    mix=mix,
                    seed=workload_common.stream_seed(0),
                ),
            ),
            duration_s=duration,
            cores=16,
            policy="fifo",
            faults=NO_FAULTS,
            planner="static",
            plan_top_k=PLAN_TOP_K,
        )
        return dataclasses.replace(config, **overrides)

    # Deterministic probe: the unsqueezed static scenario's EPC high water
    # sizes the budget so only the squeeze forces overflow.
    probe = engine.run(scenario())
    budget = BUDGET_PAD * probe.epc_high_water_bytes
    plan = _squeeze_plan(duration)

    arms = ("static", "adaptive", "adaptive+learned", "oracle")
    learned_tracer = None
    for label in arms:
        planner = {"static": "static", "oracle": "oracle"}.get(
            label, "adaptive"
        )
        # Pin "off" (not None) on the rewrite-free arms so a session-level
        # --rewrite cannot contaminate the comparison.
        rewrite = "learned" if label == "adaptive+learned" else "off"
        run_tracer = Tracer(label=f"wl08-{label}")
        if rewrite == "learned":
            learned_tracer = run_tracer
        with use_tracer(tee(current_tracer(), run_tracer)):
            metrics = engine.run(
                scenario(
                    epc_budget_bytes=budget,
                    faults=plan,
                    planner=planner,
                    rewrite=rewrite,
                )
            )
        for p in workload_common.PERCENTILES:
            report.add(
                f"{label} latency",
                p,
                metrics.latency_percentile_s(p, stream="clients") * 1e3,
                "ms",
            )
        report.add("goodput", label, metrics.goodput_qps(), "QPS")
        report.notes.append(workload_common.counters_note(label, metrics))

    static_p99 = report.value("static latency", 99)
    oracle_p99 = report.value("oracle latency", 99)
    adaptive_p99 = report.value("adaptive latency", 99)
    learned_p99 = report.value("adaptive+learned latency", 99)
    gap = static_p99 - oracle_p99

    def recovered(p99: float) -> float:
        return (static_p99 - p99) / gap if gap > 0 else 1.0

    report.notes.append(
        f"clients p99: static {static_p99:.0f} ms, adaptive "
        f"{adaptive_p99:.0f} ms, adaptive+learned {learned_p99:.0f} ms, "
        f"oracle {oracle_p99:.0f} ms — learned rewrites recover "
        f"{recovered(learned_p99):.0%} of the static-to-oracle gap "
        f"(plain adaptive: {recovered(adaptive_p99):.0%}; the oracle is "
        "physical-only, so > 100 % means the logical winner beat its arms)"
    )
    if learned_tracer is not None:
        report.notes.append(
            "learned arm: " + rewrite_breakdown(learned_tracer).describe()
        )
    report.notes.append(
        f"plan {plan.name} (seed {plan.seed}): EPC squeeze to "
        f"{SQUEEZE_MAGNITUDE:.0%} from {SQUEEZE_START * duration:.1f} s "
        f"of a {duration:.1f} s arrival window onward (covers the drain); "
        f"budget {budget / 1e6:.0f} MB ({BUDGET_PAD:.1f}x probe high "
        f"water); top-{PLAN_TOP_K} physical arms per template"
    )
    return report
