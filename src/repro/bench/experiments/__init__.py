"""One module per reproduced figure/table of the paper."""
