"""wl05: serving under an EPC squeeze — adaptive planning vs static plans.

One serving scenario runs four times under the SGX (data-in-enclave)
setting with identical streams, seeds, and a pinned EPC-squeeze fault
plan; only the planner mode differs:

* **static-native** — the historical hardcoded plans (RHO-unrolled
  everywhere): what a SGX-oblivious engine serves, and exactly what every
  run served before :mod:`repro.planner` existed;
* **cost** — the planner's analytical choice, made once per template
  against the *unsqueezed* budget (the cost model cannot see a squeeze
  that has not happened yet);
* **adaptive** — the epsilon-greedy selector over the top-k candidates:
  it starts from the analytical ranking and learns from observed
  latencies that, inside the squeeze, the big-scratch RHO plans overflow
  into the Fig. 11 penalty while smaller-footprint plans (PHT/CrkJoin)
  keep fitting;
* **oracle** — the per-dispatch upper bound that sees the momentary EPC
  headroom.

The EPC budget is sized from a deterministic unsqueezed probe run, so
only the squeeze forces the overflow regime.  The acceptance bar is that
adaptive recovers at least half of the clients' p99 gap between
static-native and oracle.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.bench.experiments import common, workload_common
from repro.bench.report import ExperimentReport
from repro.faults import NO_FAULTS, FaultKind, FaultPlan, FaultSpec
from repro.machine import SimMachine
from repro.trace import Tracer, current_tracer, plan_breakdown, tee, use_tracer
from repro.workload import (
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)
from repro.workload.jobs import JobKind, JobTemplate, serving_templates

EXPERIMENT_ID = "wl05"
TITLE = "Serving under EPC squeeze: adaptive planner vs static plans"
PAPER_REFERENCE = "serving-layer consequence of Fig. 3/8/11"

#: The squeezed tenant's join: a probe-heavy foreign-key join.  The shape
#: is chosen so the planner has a real trade to make: RHO-unrolled is
#: fastest with room to breathe but its partitioning scratch doubles the
#: inputs (~820 MB), while PHT streams the probe against a small hash
#: table (~450 MB) at only ~1.13x RHO's base cost.  Inside the squeeze the
#: scheduler's EDMM penalty on RHO's overflow dwarfs that 13 %.
#: Joins take the whole pool: at most one join holds EPC at a time, so
#: the headroom a selector sees is the headroom its query will run with.
JOIN_BUILD_MB = 10.0
JOIN_PROBE_MB = 400.0
JOIN_THREADS = 16

#: The interactive tenants' mix: the squeezed join dominates the tail.
MIX_WEIGHTS = {"scan-small": 0.4, "join-probe-heavy": 0.6}

#: Offered load as a fraction of the mix's nominal capacity — low enough
#: that the well-planned arms stay stable, so the tail is service-driven
#: (the planner's domain) rather than pure queueing backlog.
LOAD_FRACTION = 0.4

#: Budget pad over the probe's EPC high water (see wl04).
BUDGET_PAD = 1.1

#: The squeeze: a co-tenant grabs 65 % of the EPC a quarter into the run
#: and never gives it back (it outlives the arrival window, so drained
#: stragglers are squeezed too).
SQUEEZE_MAGNITUDE = 0.35
SQUEEZE_START = 0.25  # fraction of the arrival window
SQUEEZE_END = 4.0

#: All six join arms stay available to the selectors (the refuge plans —
#: PHT, INL, CrkJoin — rank last analytically but win inside the squeeze).
PLAN_TOP_K = 6

PLAN_SEED = 31


def _squeeze_plan(duration_s: float) -> FaultPlan:
    return FaultPlan(
        name="wl05-epc-squeeze",
        seed=PLAN_SEED,
        specs=(
            FaultSpec(
                FaultKind.EPC_SQUEEZE,
                start_s=SQUEEZE_START * duration_s,
                end_s=SQUEEZE_END * duration_s,
                magnitude=SQUEEZE_MAGNITUDE,
            ),
        ),
    )


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Latency/goodput of the four planner arms on one squeezed scenario."""
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    catalog = JobCatalog(machine, quick=quick)
    templates = serving_templates()
    templates["join-probe-heavy"] = JobTemplate(
        name="join-probe-heavy",
        kind=JobKind.JOIN,
        threads=JOIN_THREADS,
        build_bytes=JOIN_BUILD_MB * 1e6,
        probe_bytes=JOIN_PROBE_MB * 1e6,
    )
    engine = ServingEngine(catalog, templates=templates)
    mix = QueryMix.of(MIX_WEIGHTS)
    queries = workload_common.target_queries(quick)

    costs = {
        name: catalog.cost(engine.templates[name], common.SETTING_SGX_IN)
        for name in MIX_WEIGHTS
    }
    capacity = workload_common.capacity_qps(costs, MIX_WEIGHTS, cores=16)
    qps = LOAD_FRACTION * capacity
    duration = queries / qps

    def scenario(**overrides) -> WorkloadConfig:
        config = WorkloadConfig(
            setting=common.SETTING_SGX_IN,
            open_streams=(
                OpenLoopStream(
                    "clients",
                    qps=qps,
                    mix=mix,
                    seed=workload_common.stream_seed(0),
                ),
            ),
            duration_s=duration,
            cores=16,
            policy="fifo",
            faults=NO_FAULTS,
            planner="static",
            plan_top_k=PLAN_TOP_K,
        )
        return dataclasses.replace(config, **overrides)

    # Deterministic probe: the unsqueezed static scenario's EPC high water
    # sizes the budget so only the squeeze forces overflow.
    probe = engine.run(scenario())
    budget = BUDGET_PAD * probe.epc_high_water_bytes
    plan = _squeeze_plan(duration)

    arms = ("static-native", "cost", "adaptive", "oracle")
    for label in arms:
        mode = "static" if label == "static-native" else label
        run_tracer = Tracer(label=f"wl05-{label}")
        with use_tracer(tee(current_tracer(), run_tracer)):
            metrics = engine.run(
                scenario(
                    epc_budget_bytes=budget,
                    faults=plan,
                    planner=mode,
                )
            )
        for p in workload_common.PERCENTILES:
            report.add(
                f"{label} latency",
                p,
                metrics.latency_percentile_s(p, stream="clients") * 1e3,
                "ms",
            )
        report.add("goodput", label, metrics.goodput_qps(), "QPS")
        report.notes.append(workload_common.counters_note(label, metrics))
        if mode != "static":
            choices = plan_breakdown(run_tracer)
            report.notes.append(choices.describe())

    static_p99 = report.value("static-native latency", 99)
    oracle_p99 = report.value("oracle latency", 99)
    adaptive_p99 = report.value("adaptive latency", 99)
    cost_p99 = report.value("cost latency", 99)
    gap = static_p99 - oracle_p99
    recovered = (static_p99 - adaptive_p99) / gap if gap > 0 else 1.0
    report.notes.append(
        f"clients p99: static-native {static_p99:.0f} ms, cost "
        f"{cost_p99:.0f} ms, adaptive {adaptive_p99:.0f} ms, oracle "
        f"{oracle_p99:.0f} ms — adaptive recovers {recovered:.0%} of the "
        f"static-to-oracle gap under the squeeze"
    )
    report.notes.append(
        f"plan {plan.name} (seed {plan.seed}): EPC squeeze to "
        f"{SQUEEZE_MAGNITUDE:.0%} from {SQUEEZE_START * duration:.1f} s "
        f"of a {duration:.1f} s arrival window onward (covers the drain); "
        f"budget {budget / 1e6:.0f} MB ({BUDGET_PAD:.1f}x probe high "
        f"water); top-{PLAN_TOP_K} arms per template"
    )
    return report
