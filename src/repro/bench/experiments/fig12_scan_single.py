"""Figure 12: single-threaded AVX-512 column scan across the three settings.

The same data is scanned 1000 times (after warm-up) over column sizes from
cache-resident to DRAM-sized.  Expected: identical throughput in cache;
out of cache the scan over EPC data is only ~3 % slower than plain, and
enclave code over untrusted data matches plain — sequential decryption is
hidden by prefetching.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.scans import BitvectorScan, RangePredicate
from repro.machine import SimMachine
from repro.tables.table import Column

EXPERIMENT_ID = "fig12"
TITLE = "Single-threaded SIMD scan: throughput vs column size, 3 settings"
PAPER_REFERENCE = "Figure 12"

#: Column sizes (bytes), cache-resident to far beyond L3.
COLUMN_BYTES = (1e6, 8e6, 24e6, 100e6, 1e9, 4e9)

#: The paper's measurement: 10 warm-up scans, then 1000 timed scans.
REPEATS = 1000

_SETTINGS = (
    ("Plain CPU", common.SETTING_PLAIN),
    ("SGX (Data in Enclave)", common.SETTING_SGX_IN),
    ("SGX (Data outside Enclave)", common.SETTING_SGX_OUT),
)


def _make_column(size_bytes: float, seed: int, cap: int) -> Column:
    physical = min(int(size_bytes), cap)
    rng = np.random.default_rng(seed)
    return Column("values", rng.integers(0, 256, physical, dtype=np.uint8))


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Read throughput (GB/s) per setting per column size."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    cap = 100_000 if quick else 4_000_000
    repeats = 10 if quick else REPEATS
    scan = BitvectorScan()
    for size in COLUMN_BYTES:
        for setting_label, setting in _SETTINGS:

            def measure(seed: int, _size=size, _set=setting) -> float:
                sim = common.make_machine(machine)
                column = _make_column(_size, seed, cap)
                predicate = RangePredicate(64, 192)
                with sim.context(_set, threads=1) as ctx:
                    result = scan.run(
                        ctx, column, predicate,
                        sim_scale=_size / column.nbytes,
                        repeats=repeats,
                    )
                return common.gb_per_s(
                    result.read_throughput_bytes_per_s(sim.frequency_hz)
                )

            report.add(setting_label, size,
                       common.measure_stats(measure, config), "GB/s")
    big = COLUMN_BYTES[-1]
    rel = report.value("SGX (Data in Enclave)", big) / report.value(
        "Plain CPU", big
    )
    report.notes.append(
        f"out-of-cache in-enclave scan at {1 - rel:.1%} slowdown (paper ~3 %); "
        "in-cache sizes are penalty-free"
    )
    return report
