"""Figure 3: join-algorithm overview, plain CPU vs SGX (data in enclave).

Five joins on the 100 MB x 400 MB workload with all 16 threads of one
socket.  Expected shape: CrkJoin slowest (~60 M rows/s in the enclave);
every state-of-the-art join beats it (3x for INL up to 12x for RHO); hash
joins (PHT, RHO) lead in absolute terms but show by far the largest
in-enclave reduction, while MWAY/INL are nearly unaffected.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import ALL_JOINS
from repro.machine import SimMachine
from repro.tables import generate_join_relation_pair

EXPERIMENT_ID = "fig03"
TITLE = "Join overview: five algorithms, plain CPU vs SGX"
PAPER_REFERENCE = "Figure 3"

_SETTINGS = (
    ("Plain CPU", common.SETTING_PLAIN),
    ("SGX (Data in Enclave)", common.SETTING_SGX_IN),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Measure throughput of every join under both settings."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for join_cls in ALL_JOINS:
        for setting_label, setting in _SETTINGS:

            def measure(seed: int, _cls=join_cls, _set=setting) -> float:
                sim = common.make_machine(machine)
                build, probe = generate_join_relation_pair(
                    common.BUILD_BYTES,
                    common.PROBE_BYTES,
                    seed=seed,
                    physical_row_cap=config.row_cap,
                )
                with sim.context(_set, threads=common.SOCKET_THREADS) as ctx:
                    result = _cls().run(ctx, build, probe)
                return common.mrows(result.throughput_rows_per_s(sim.frequency_hz))

            report.add(
                setting_label, join_cls.name, common.measure_stats(measure, config),
                "M rows/s",
            )
    crk = report.value("SGX (Data in Enclave)", "CrkJoin")
    rho = report.value("SGX (Data in Enclave)", "RHO")
    inl = report.value("SGX (Data in Enclave)", "INL")
    report.notes.append(
        f"in-enclave speedup over CrkJoin: RHO {rho / crk:.1f}x (paper ~12x), "
        f"INL {inl / crk:.1f}x (paper ~3x)"
    )
    return report
