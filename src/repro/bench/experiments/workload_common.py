"""Shared plumbing for the serving-workload experiments (wl01-wl03).

The wl experiments do not use the repetition runner: one serving simulation
already aggregates hundreds of queries, and its metrics are deterministic
given the stream seeds.  Stream seeds derive from the process-wide base
seed (:data:`repro.bench.runner.DEFAULT_BASE_SEED`), so ``--seed`` makes
serving runs reproducible-but-variable exactly like the figure experiments.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.bench import runner
from repro.bench.report import ExperimentReport
from repro.trace.breakdown import ServingBreakdown
from repro.workload.jobs import JobCost
from repro.workload.metrics import WorkloadMetrics

#: Queries per simulated serving run (per offered-load point).
QUICK_QUERIES = 400
FULL_QUERIES = 1200

#: The latency percentiles every wl experiment reports.
PERCENTILES = (50, 95, 99)


def stream_seed(index: int = 0) -> int:
    """Seed of the ``index``-th stream, derived from the CLI base seed."""
    return runner.DEFAULT_BASE_SEED + index


def target_queries(quick: bool) -> int:
    return QUICK_QUERIES if quick else FULL_QUERIES


def capacity_qps(costs: Mapping[str, JobCost], weights: Mapping[str, float],
                 cores: int) -> float:
    """Saturation throughput of a weighted mix on a ``cores``-sized pool.

    A query of template t occupies ``threads * service_s`` core-seconds;
    the pool supplies ``cores`` core-seconds per second, so the capacity is
    their ratio under the mix distribution.
    """
    total_weight = sum(weights.values())
    mean_core_seconds = sum(
        weight / total_weight * costs[name].threads * costs[name].service_s
        for name, weight in weights.items()
    )
    return cores / mean_core_seconds


def add_latency_rows(
    report: ExperimentReport,
    metrics: WorkloadMetrics,
    series_prefix: str,
    x,
) -> None:
    """Append the standard percentile rows of one serving run."""
    for p in PERCENTILES:
        report.add(
            f"{series_prefix} p{p}",
            x,
            metrics.latency_percentile_s(p) * 1e3,
            "ms",
        )


def add_breakdown_rows(
    report: ExperimentReport,
    breakdown: ServingBreakdown,
    series_prefix: str,
    x,
) -> None:
    """Append a trace-derived time decomposition of one serving run.

    The four shares (queueing / service / EDMM penalty / interference) sum
    to 1 and come from the trace's dispatch events — the generic Fig. 6
    style decomposition for the serving layer.
    """
    shares = breakdown.fractions()
    report.add(f"{series_prefix} queueing share", x, shares["queueing"], "frac")
    report.add(f"{series_prefix} service share", x, shares["service"], "frac")
    report.add(
        f"{series_prefix} EDMM penalty share", x, shares["edmm_penalty"], "frac"
    )
    report.add(
        f"{series_prefix} interference share", x, shares["interference"], "frac"
    )


def counters_note(label: str, metrics: WorkloadMetrics) -> str:
    """One report note summarizing a run's scheduler decisions."""
    c = metrics.counters
    return (
        f"{label}: {c.completed} served, {c.dispatched_immediately} "
        f"dispatched on arrival, {c.queued} queued, {c.bypass_dispatches} "
        f"bypassed, {c.edmm_admissions} EDMM-overflow admissions, "
        f"blocked on cores/EPC {c.blocked_on_cores}/{c.blocked_on_epc}; "
        f"EPC high water {metrics.epc_high_water_bytes / 1e9:.2f} GB"
    )


def per_template_p99(metrics: WorkloadMetrics) -> Dict[str, float]:
    """p99 latency (ms) per template present in the run."""
    templates = sorted({r.template for r in metrics.records})
    return {
        t: metrics.latency_percentile_s(99, template=t) * 1e3
        for t in templates
    }
