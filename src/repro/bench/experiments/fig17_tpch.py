"""Figure 17: TPC-H Q3/Q10/Q12/Q19 at SF 10 with the RHO join, 16 threads.

Each query runs outside the enclave, inside unoptimized, and inside with
the unroll/reorder optimization.  Expected: the optimization cuts query
runtime by ~7 % (Q19) to ~30 % (Q12); the average in-enclave overhead drops
from ~42 % (unoptimized) to ~15 % (optimized).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.queries import QueryExecutor, TPCH_QUERIES
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_tpch

EXPERIMENT_ID = "fig17"
TITLE = "TPC-H Q3/Q10/Q12/Q19 (SF 10): plain vs SGX vs SGX optimized"
PAPER_REFERENCE = "Figure 17"

SCALE_FACTOR = 10.0

_CASES = (
    ("plain CPU", common.SETTING_PLAIN, CodeVariant.NAIVE),
    ("SGX", common.SETTING_SGX_IN, CodeVariant.NAIVE),
    ("SGX optimized", common.SETTING_SGX_IN, CodeVariant.UNROLLED),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Query runtimes (ms) for the three configurations."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for query_name, make_plan in TPCH_QUERIES.items():
        for case_label, setting, variant in _CASES:

            def measure(seed: int, _plan=make_plan, _set=setting, _var=variant):
                sim = common.make_machine(machine)
                data = generate_tpch(
                    SCALE_FACTOR, seed=seed, physical_sf_cap=config.tpch_sf_cap
                )
                tables = {
                    "customer": data.customer,
                    "orders": data.orders,
                    "lineitem": data.lineitem,
                    "part": data.part,
                }
                with sim.context(_set, threads=common.SOCKET_THREADS) as ctx:
                    result = QueryExecutor(_var).run(ctx, _plan(), tables)
                return result.seconds(sim.frequency_hz) * 1e3

            report.add(case_label, query_name,
                       common.measure_stats(measure, config), "ms")
    overheads_naive = []
    overheads_opt = []
    for query_name in TPCH_QUERIES:
        plain = report.value("plain CPU", query_name)
        overheads_naive.append(report.value("SGX", query_name) / plain - 1)
        overheads_opt.append(
            report.value("SGX optimized", query_name) / plain - 1
        )
    report.notes.append(
        f"average in-enclave overhead: unoptimized "
        f"{sum(overheads_naive) / len(overheads_naive):+.0%} (paper +42 %), "
        f"optimized {sum(overheads_opt) / len(overheads_opt):+.0%} "
        "(paper +15 %)"
    )
    return report
