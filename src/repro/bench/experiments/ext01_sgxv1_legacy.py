"""Extension: the same joins on an SGXv1-class platform.

Not a figure of the paper, but its premise: on first-generation SGX the
EPC is ~93 MB, paging costs tens of microseconds per 4 KiB page, and even
sequential enclave access pays the integrity-tree toll.  Running the
Fig. 3 join lineup on the legacy platform model shows why CrkJoin existed
— its in-place, working-set-shrinking cracking avoids most paging while
the cache-optimized joins collapse — and, side by side with the SGXv2
numbers, why those optimizations are obsolete now (Sec. 1, Sec. 7).

Inputs are scaled down to 50 MB x 200 MB — still far beyond the 93 MB
EPC, as in the TEEBench cache-exceed setting, but small enough that an
SGXv1 deployment would plausibly have attempted it.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import CrkJoin, ParallelHashJoin, RadixJoin
from repro.enclave.enclave import EnclaveConfig
from repro.hardware.platforms import sgxv1_calibration, sgxv1_testbed
from repro.machine import SimMachine
from repro.tables import generate_join_relation_pair
from repro.units import MiB

EXPERIMENT_ID = "ext01"
TITLE = "Extension: join lineup on an SGXv1-class platform (EPC paging)"
PAPER_REFERENCE = "Sec. 1/7 premise (prior work [23, 24])"

BUILD_BYTES = 50e6
PROBE_BYTES = 200e6


def _legacy_machine() -> SimMachine:
    return SimMachine(sgxv1_testbed(), sgxv1_calibration())


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Throughput of CrkJoin/RHO/PHT on SGXv1 vs the same joins on SGXv2."""
    del machine  # this experiment pins its own platforms
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    joins = (CrkJoin, RadixJoin, ParallelHashJoin)
    for platform, make_machine in (
        ("SGXv1 enclave", _legacy_machine),
        ("SGXv2 enclave", lambda: SimMachine()),
    ):
        for join_cls in joins:

            def measure(seed: int, _cls=join_cls, _mk=make_machine, _plat=platform):
                sim = _mk()
                build, probe = generate_join_relation_pair(
                    BUILD_BYTES,
                    PROBE_BYTES,
                    seed=seed,
                    physical_row_cap=config.row_cap,
                )
                threads = sim.spec.cores_per_socket
                # An SGXv1 enclave may exceed its physical EPC — the cost
                # model charges the paging; size the heap for the workload.
                enclave_config = EnclaveConfig(heap_bytes=2048 * MiB, node=0)
                with sim.context(
                    common.SETTING_SGX_IN,
                    threads=threads,
                    enclave_config=enclave_config,
                ) as ctx:
                    result = _cls().run(ctx, build, probe)
                return common.mrows(result.throughput_rows_per_s(sim.frequency_hz))

            report.add(platform, join_cls.name,
                       common.measure_stats(measure, config), "M rows/s")
    crk_v1 = report.value("SGXv1 enclave", "CrkJoin")
    rho_v1 = report.value("SGXv1 enclave", "RHO")
    pht_v1 = report.value("SGXv1 enclave", "PHT")
    rho_v2 = report.value("SGXv2 enclave", "RHO")
    report.notes.append(
        f"on SGXv1, CrkJoin beats RHO by {crk_v1 / rho_v1:.1f}x and PHT by "
        f"{crk_v1 / pht_v1:.1f}x; on SGXv2 the same RHO is "
        f"{rho_v2 / rho_v1:.0f}x its SGXv1 self — the EPC bottleneck, not "
        "the algorithms, changed"
    )
    return report
