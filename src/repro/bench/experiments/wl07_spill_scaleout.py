"""wl07: larger-than-EPC serving — sealed spill vs EDMM thrash.

The paper stops where the working set exceeds the EPC: Fig. 11 shows the
EDMM/paging collapse and Sec. 6 leaves larger-than-EPC operators to
"mitigations at the application level".  This experiment *is* that
mitigation, priced on the same calibrated testbed: a join-heavy mix is
served under budgets squeezed well below its natural high water, and each
squeeze point runs twice —

* **edmm** — the overflow pays the Fig. 11 thrash model (the pre-storage
  behaviour): service inflates by ``EDMM_OVERFLOW_SLOWDOWN`` times the
  overflowing fraction of the working set;
* **spill** — the same budget as a ``--storage`` sealed-spill ceiling:
  the overflowing share is grace-partitioned to sealed untrusted runs
  instead, paying the calibrated AES-GCM seal/unseal cycles plus block
  I/O (:class:`~repro.storage.SealedStore`), every sealed byte visible
  in the trace's ``storage.*`` events.

Expected shape: the crossover.  At mild squeezes the two are close (small
overflow, both penalties shallow); as the budget shrinks the EDMM arm's
p99 blows up ~linearly in the overflow fraction while the spill arm pays
the (much flatter) seal/unseal bandwidth, so goodput holds.  Two more
arms probe the rest of the subsystem: a **faulted** spill run (a
STORAGE_STALL window plus torn-block unseal failures, both drawn by
decision identity) and a **sharded** run (a ``2x2`` cluster where every
shard spills locally — the ``shard`` attribute on the spill events keeps
shard-local sealing distinct from the router's re-shard shuffle).

The reference arm and every spill arm complete the same query bag — the
spill path changes *when and where* bytes live, never results; the
property suite (`tests/test_storage.py`) asserts the operator-level bag
identity directly.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common, workload_common
from repro.bench.report import ExperimentReport
from repro.cluster import ClusterConfig, ClusterSpec
from repro.faults import NO_FAULTS, FaultKind, FaultPlan, FaultSpec
from repro.machine import SimMachine
from repro.storage import StorageConfig
from repro.trace import (
    Tracer,
    current_tracer,
    storage_breakdown,
    tee,
    use_tracer,
)
from repro.workload import (
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)

EXPERIMENT_ID = "wl07"
TITLE = "Larger-than-EPC serving: sealed spill vs EDMM thrash"
PAPER_REFERENCE = "larger-than-EPC extension of Fig. 11 / Sec. 6"

#: Join-heavy mix: the big join's build side is what overflows first.
MIX_WEIGHTS = {"join-big": 0.35, "join-medium": 0.45, "scan-small": 0.20}

#: Offered load as a fraction of the mix's serving capacity — low enough
#: that queueing never masks the spill/thrash penalty being measured.
LOAD_FRACTION = 0.55

#: The squeeze sweep: serving budgets as fractions of the reference
#: arm's unconstrained EPC high water.  0.5 barely overflows the big
#: join; 0.125 forces most of its working set out.
BUDGET_FRACTIONS = (0.5, 0.25, 0.125)

#: The faulted and sharded arms run at this squeeze point.
DEEP_FRACTION = 0.25

#: The faulted arm's plan: a mid-window device stall plus torn blocks.
PLAN_SEED = 37
STALL_MAGNITUDE = 4.0
TORN_PROBABILITY = 0.03

#: The sharded arm's shard map: 2 enclaves on each of 2 sockets.
SHARD_SPEC = "2x2"

#: Client streams splitting the offered load (the router hashes by
#: stream, so a single stream would pin every spill to one shard).
N_CLIENTS = 8


def _storm_plan(duration_s: float) -> FaultPlan:
    """Storage hazards scaled to the run window."""
    return FaultPlan(
        name="wl07-storage-storm",
        seed=PLAN_SEED,
        specs=(
            FaultSpec(
                FaultKind.STORAGE_STALL,
                start_s=0.30 * duration_s,
                end_s=0.70 * duration_s,
                magnitude=STALL_MAGNITUDE,
            ),
            FaultSpec(FaultKind.TORN_BLOCK, probability=TORN_PROBABILITY),
        ),
    )


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """p99/goodput of the edmm-vs-spill sweep plus fault/shard arms."""
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    catalog = JobCatalog(machine, quick=quick)
    engine = ServingEngine(catalog)
    mix = QueryMix.of(MIX_WEIGHTS)
    queries = workload_common.target_queries(quick)

    costs = {
        name: catalog.cost(engine.templates[name], common.SETTING_SGX_IN)
        for name in MIX_WEIGHTS
    }
    capacity = workload_common.capacity_qps(costs, MIX_WEIGHTS, cores=16)
    qps = LOAD_FRACTION * capacity
    duration = queries / qps

    def scenario(**overrides) -> WorkloadConfig:
        base = dict(
            setting=common.SETTING_SGX_IN,
            open_streams=tuple(
                OpenLoopStream(
                    f"clients-{i}",
                    qps=qps / N_CLIENTS,
                    mix=mix,
                    seed=workload_common.stream_seed(i),
                )
                for i in range(N_CLIENTS)
            ),
            duration_s=duration,
            cores=16,
            policy="fifo",
            faults=NO_FAULTS,
            planner="static",
        )
        base.update(overrides)
        return WorkloadConfig(**base)

    def serve(label, config, *, cluster=False):
        run_tracer = Tracer(label=f"wl07-{label}")
        with use_tracer(tee(current_tracer(), run_tracer)):
            if cluster:
                metrics = engine.run_cluster(config).metrics
            else:
                metrics = engine.run(config)
        return metrics, run_tracer

    # --- reference: unconstrained, in-memory, no storage ---------------
    reference, _ = serve("reference", scenario())
    high_water = reference.epc_high_water_bytes
    for p in workload_common.PERCENTILES:
        report.add(
            "reference latency",
            p,
            reference.latency_percentile_s(p) * 1e3,
            "ms",
        )
    report.add("reference goodput", "ref", reference.goodput_qps(), "QPS")
    report.notes.append(
        workload_common.counters_note("reference", reference)
    )

    # --- the sweep: EDMM thrash vs sealed spill at each squeeze --------
    spill_configs = {}
    for fraction in BUDGET_FRACTIONS:
        budget = fraction * high_water
        storage = StorageConfig(budget_bytes=int(budget))
        spill_configs[fraction] = storage

        edmm, _ = serve(
            f"edmm-{fraction}", scenario(epc_budget_bytes=budget)
        )
        spill, spill_tracer = serve(
            f"spill-{fraction}", scenario(storage=storage)
        )
        down = storage_breakdown(spill_tracer)

        report.add(
            "edmm p99",
            fraction,
            edmm.latency_percentile_s(99) * 1e3,
            "ms",
        )
        report.add(
            "spill p99",
            fraction,
            spill.latency_percentile_s(99) * 1e3,
            "ms",
        )
        report.add("edmm goodput", fraction, edmm.goodput_qps(), "QPS")
        report.add("spill goodput", fraction, spill.goodput_qps(), "QPS")
        report.add("spills", fraction, down.spills, "queries")
        report.add(
            "spilled volume", fraction, down.spilled_bytes / 1e9, "GB"
        )
        report.add("seal time", fraction, down.seal_s, "s")
        report.add("unseal time", fraction, down.unseal_s, "s")
        report.notes.append(
            f"budget {fraction:g}x high water "
            f"({budget / 1e9:.2f} GB): {down.describe()}"
        )
        if spill.counters.completed != reference.counters.completed:
            report.notes.append(
                f"WARNING: spill arm at {fraction:g}x completed "
                f"{spill.counters.completed} != reference "
                f"{reference.counters.completed}"
            )

    # --- faulted spill: stall window + torn blocks ---------------------
    deep = spill_configs[DEEP_FRACTION]
    faulted, fault_tracer = serve(
        "spill-faulted",
        scenario(storage=deep, faults=_storm_plan(duration)),
    )
    fault_down = storage_breakdown(fault_tracer)
    report.add(
        "faulted p99",
        "spill-faulted",
        faulted.latency_percentile_s(99) * 1e3,
        "ms",
    )
    report.add("stalled spills", "spill-faulted", fault_down.stalled, "spills")
    report.add("torn blocks", "spill-faulted", fault_down.torn, "aborts")
    report.notes.append(
        f"spill-faulted ({STALL_MAGNITUDE:g}x stall over the middle 40%, "
        f"torn p={TORN_PROBABILITY:g}): {fault_down.describe()}; "
        f"availability {faulted.availability:.3f}"
    )

    # --- sharded spill: every shard seals locally ----------------------
    spec = ClusterSpec.parse(SHARD_SPEC)
    sharded, shard_tracer = serve(
        "spill-sharded",
        scenario(storage=deep, cluster=ClusterConfig(spec=spec)),
        cluster=True,
    )
    shard_down = storage_breakdown(shard_tracer)
    report.add(
        "sharded p99",
        SHARD_SPEC,
        sharded.latency_percentile_s(99) * 1e3,
        "ms",
    )
    report.add("sharded spills", SHARD_SPEC, shard_down.spills, "queries")
    per_shard = {
        shard_id: storage_breakdown(shard_tracer, shard=shard_id).spills
        for shard_id in sorted(
            {
                str(r.attrs.get("shard"))
                for r in shard_tracer.records
                if getattr(r, "attrs", None) and "shard" in r.attrs
            }
        )
    }
    active = {s: n for s, n in per_shard.items() if n}
    report.notes.append(
        f"spill-sharded ({SHARD_SPEC}): {shard_down.describe()}; "
        f"shard-local spills " + ", ".join(
            f"{shard_id}: {count}" for shard_id, count in active.items()
        )
    )

    # --- headline summary ----------------------------------------------
    tight = BUDGET_FRACTIONS[-1]
    report.notes.append(
        f"at {tight:g}x high water ({tight * high_water / 1e9:.2f} GB) the "
        f"sealed spill path serves p99 "
        f"{report.value('spill p99', tight):.0f} ms vs the EDMM thrash "
        f"path's {report.value('edmm p99', tight):.0f} ms "
        f"(reference {report.value('reference latency', 99):.0f} ms); "
        f"goodput {report.value('spill goodput', tight):.1f} vs "
        f"{report.value('edmm goodput', tight):.1f} QPS"
    )
    return report
