"""Extension: probe-key skew as a natural enclave mitigation.

The paper's join data is uniform (Sec. 4).  Real foreign keys are often
Zipf-skewed, which concentrates hash-table probes on a hot set that stays
cache-resident — and cache hits are the one access class SGXv2 never
penalizes (Fig. 5 left).  This sweep runs the PHT join over increasingly
skewed probe streams: absolute throughput rises for both settings, and the
*relative* in-enclave performance recovers toward the in-cache 95 % of
Fig. 4 as skew pushes the effective working set under L3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import ParallelHashJoin
from repro.machine import SimMachine
from repro.tables import generate_key_value_table
from repro.tables.generator import skewed_probe_keys
from repro.tables.table import Column, Table

EXPERIMENT_ID = "ext04"
TITLE = "Extension: PHT under Zipf-skewed probe keys"
PAPER_REFERENCE = "Sec. 4.1 consequence (uniform-data assumption relaxed)"

ZIPF_THETAS = (0.0, 0.5, 0.8, 1.0, 1.25)


def _tables(seed: int, theta: float, row_cap: int):
    rng = np.random.default_rng(seed)
    build = generate_key_value_table(
        "R", common.BUILD_BYTES, rng=rng, physical_row_cap=row_cap
    )
    probe_physical = row_cap
    probe_scale = (common.PROBE_BYTES / 8) / probe_physical
    indexes = skewed_probe_keys(build.num_rows, probe_physical, theta, rng)
    probe = Table(
        "S",
        [
            Column("key", build["key"][indexes]),
            Column(
                "payload",
                rng.integers(0, 1 << 30, probe_physical, dtype=np.int32),
            ),
        ],
        sim_scale=probe_scale,
    )
    return build, probe


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Relative and absolute PHT throughput per skew level."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for theta in ZIPF_THETAS:

        def measure_relative(seed: int, _theta=theta) -> float:
            build, probe = _tables(seed, _theta, config.row_cap)

            def cycles(setting):
                sim = common.make_machine(machine)
                with sim.context(setting, threads=common.SOCKET_THREADS) as ctx:
                    return ParallelHashJoin().run(ctx, build, probe).cycles

            return cycles(common.SETTING_PLAIN) / cycles(common.SETTING_SGX_IN)

        def measure_sgx(seed: int, _theta=theta) -> float:
            build, probe = _tables(seed, _theta, config.row_cap)
            sim = common.make_machine(machine)
            with sim.context(
                common.SETTING_SGX_IN, threads=common.SOCKET_THREADS
            ) as ctx:
                result = ParallelHashJoin().run(ctx, build, probe)
            return common.mrows(result.throughput_rows_per_s(sim.frequency_hz))

        report.add("SGX relative to plain", theta,
                   common.measure_stats(measure_relative, config), "x of plain")
        report.add("SGX throughput", theta,
                   common.measure_stats(measure_sgx, config), "M rows/s")
    uniform = report.value("SGX relative to plain", 0.0)
    heavy = report.value("SGX relative to plain", ZIPF_THETAS[-1])
    report.notes.append(
        f"relative in-enclave PHT performance recovers from {uniform:.2f} "
        f"(uniform) to {heavy:.2f} under Zipf {ZIPF_THETAS[-1]} — skew keeps "
        "the hot table entries in cache, where SGX adds no cost"
    )
    return report
