"""Shared plumbing for the experiment modules.

All experiments run against a fresh :class:`~repro.machine.SimMachine` per
measurement (so EPC accounting starts clean) and use the paper's canonical
workload sizes; ``quick`` mode shrinks the *physical* data and repetition
count, never the logical sizes the cost model prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.bench.runner import PAPER_REPETITIONS, RunStats, repeat_runs
from repro.enclave.runtime import ExecutionSetting
from repro.machine import SimMachine

#: The paper's canonical join inputs (Sec. 4): 100 MB build, 400 MB probe.
BUILD_BYTES = 100e6
PROBE_BYTES = 400e6

#: Threads per socket on the testbed.
SOCKET_THREADS = 16

#: Physical row caps for the two fidelity modes.
QUICK_ROW_CAP = 200_000
FULL_ROW_CAP = 1_000_000

QUICK_RUNS = 3


@dataclass(frozen=True)
class BenchConfig:
    """Fidelity knobs shared by all experiments."""

    quick: bool = True

    @property
    def runs(self) -> int:
        return QUICK_RUNS if self.quick else PAPER_REPETITIONS

    @property
    def row_cap(self) -> int:
        return QUICK_ROW_CAP if self.quick else FULL_ROW_CAP

    @property
    def tpch_sf_cap(self) -> float:
        return 0.02 if self.quick else 0.1


def make_machine(machine: Optional[SimMachine]) -> SimMachine:
    """Use the provided machine's spec/params, but fresh state per call."""
    if machine is None:
        return SimMachine()
    return SimMachine(machine.spec, machine.params)


def measure_stats(
    measure: Callable[[int], float], config: BenchConfig
) -> RunStats:
    """Repeat ``measure`` per the paper's protocol (mean ± std)."""
    return repeat_runs(measure, runs=config.runs)


def mrows(rows_per_second: float) -> float:
    """Convert rows/s to the paper's M rows/s axis unit."""
    return rows_per_second / 1e6


def gb_per_s(bytes_per_second: float) -> float:
    """Convert B/s to the paper's GB/s axis unit."""
    return bytes_per_second / 1e9


SETTING_PLAIN = ExecutionSetting.plain_cpu()
SETTING_SGX_IN = ExecutionSetting.sgx_data_in_enclave()
SETTING_SGX_OUT = ExecutionSetting.sgx_data_outside_enclave()
