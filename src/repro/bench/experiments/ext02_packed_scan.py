"""Extension: bit-packed SIMD scans inside the enclave.

The scan kernels of Sec. 5 follow Willhalm et al. [38], whose columns are
*bit-packed* dictionary codes.  This extension sweeps the code width: a
bandwidth-bound scan decodes ``8/k`` times more values per second from a
``k``-bit column, and because the enclave's only scan cost is the small
linear-read penalty, the multiplier carries over 1:1 — compression is a
pure win for enclave OLAP (it also shrinks the EPC footprint).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.scans.packed_scan import PackedScan
from repro.core.scans.predicate import RangePredicate
from repro.machine import SimMachine
from repro.tables.bitpack import BitPackedColumn

EXPERIMENT_ID = "ext02"
TITLE = "Extension: bit-packed scan throughput vs code width"
PAPER_REFERENCE = "Sec. 5 substrate ([38], Willhalm et al.)"

#: Logical column: 4 billion values (the 4 GB byte column of Fig. 13/14).
LOGICAL_VALUES = 4e9

BIT_WIDTHS = (4, 8, 12, 16, 24, 32)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Values/s of the packed scan per bit width, plain vs SGX."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    physical = 50_000 if quick else 1_000_000
    scan = PackedScan()
    for bits in BIT_WIDTHS:
        for setting_label, setting in (
            ("Plain CPU", common.SETTING_PLAIN),
            ("SGX (Data in Enclave)", common.SETTING_SGX_IN),
        ):

            def measure(seed: int, _bits=bits, _set=setting) -> float:
                sim = common.make_machine(machine)
                rng = np.random.default_rng(seed)
                column = BitPackedColumn(
                    rng.integers(0, 1 << _bits, physical, dtype=np.uint64),
                    _bits,
                )
                predicate = RangePredicate(0, (1 << _bits) // 2)
                with sim.context(_set, threads=common.SOCKET_THREADS) as ctx:
                    result = scan.run(
                        ctx, column, predicate,
                        sim_scale=LOGICAL_VALUES / column.num_values,
                    )
                return scan.values_per_second(result, sim.frequency_hz) / 1e9

            report.add(setting_label, bits,
                       common.measure_stats(measure, config), "G values/s")
    narrow = report.value("SGX (Data in Enclave)", 4)
    wide = report.value("SGX (Data in Enclave)", 32)
    rel = report.value("SGX (Data in Enclave)", 32) / report.value(
        "Plain CPU", 32
    )
    report.notes.append(
        f"4-bit codes decode {narrow / wide:.1f}x more values/s than 32-bit "
        f"(bandwidth-bound ideal: 8x); the enclave keeps {rel:.0%} of plain "
        "throughput at every width"
    )
    return report
