"""wl03: tenant interference — an analytics tenant vs an interactive one.

Tenant A is a closed-loop interactive workload: a handful of clients each
submit a single-threaded scan, wait for the result, think briefly, and
submit again.  Tenant B is an open-loop analytics stream of parallel joins
and a TPC-H plan at a fixed absolute rate.  Each setting (native and
SGX-in, naive kernels) is simulated twice: tenant A alone, then both
tenants sharing the core pool under FIFO.

Expected shape: sharing inflates tenant A's tail latency in both settings
— a burst of 4-thread joins can occupy the whole pool — but the inflation
is worse inside the enclave, where every join holds its cores longer, so
the same burst blocks the interactive tenant for more wall-clock time.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common, workload_common
from repro.bench.report import ExperimentReport
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.workload import (
    ClosedLoopStream,
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)

EXPERIMENT_ID = "wl03"
TITLE = "Mixed-tenant interference on shared cores, native vs SGX"
PAPER_REFERENCE = "serving extension of Fig. 17 / Sec. 6"

#: Tenant A: interactive clients in a submit-wait-think loop.
CLIENTS = 4
THINK_S = 0.05

#: Tenant B: analytics stream at a fixed absolute rate.
ANALYTICS_MIX = {"join-medium": 0.7, "q3": 0.3}
ANALYTICS_QPS = 10.0

_SETTINGS = (
    (common.SETTING_PLAIN, "native"),
    (common.SETTING_SGX_IN, "SGX"),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Tenant A's latency percentiles, alone vs sharing with tenant B."""
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    catalog = JobCatalog(machine, quick=quick, variant=CodeVariant.NAIVE)
    engine = ServingEngine(catalog)
    interactive = QueryMix.of({"scan-small": 1.0})
    analytics = QueryMix.of(ANALYTICS_MIX)
    queries = workload_common.target_queries(quick)
    # Duration sized so tenant B contributes ~`queries` jobs; tenant A's
    # closed loop produces roughly clients/think more on top.
    duration = queries / ANALYTICS_QPS

    for setting, short in _SETTINGS:
        for mode in ("alone", "shared"):
            tenant_a = ClosedLoopStream(
                "tenant-A",
                clients=CLIENTS,
                think_s=THINK_S,
                mix=interactive,
                seed=workload_common.stream_seed(0),
            )
            open_streams = ()
            if mode == "shared":
                open_streams = (
                    OpenLoopStream(
                        "tenant-B",
                        qps=ANALYTICS_QPS,
                        mix=analytics,
                        seed=workload_common.stream_seed(1),
                    ),
                )
            config = WorkloadConfig(
                setting=setting,
                open_streams=open_streams,
                closed_streams=(tenant_a,),
                duration_s=duration,
                cores=16,
                policy="fifo",
            )
            metrics = engine.run(config)
            for p in workload_common.PERCENTILES:
                report.add(
                    f"{short} tenant-A p{p}",
                    mode,
                    metrics.latency_percentile_s(p, stream="tenant-A") * 1e3,
                    "ms",
                )
            report.add(
                f"{short} tenant-A throughput",
                mode,
                len(metrics.latencies_s(stream="tenant-A"))
                / metrics.makespan_s,
                "QPS",
            )
            if mode == "shared":
                report.add(
                    f"{short} tenant-B p99",
                    mode,
                    metrics.latency_percentile_s(99, stream="tenant-B") * 1e3,
                    "ms",
                )
            report.notes.append(
                workload_common.counters_note(f"{short}/{mode}", metrics)
            )

    for _, short in _SETTINGS:
        alone = report.value(f"{short} tenant-A p99", "alone")
        shared = report.value(f"{short} tenant-A p99", "shared")
        report.add(f"{short} tenant-A p99 inflation", "shared",
                   shared / alone, "x")
    report.notes.append(
        f"tenant-A: {CLIENTS} closed-loop clients, think {THINK_S * 1e3:.0f} "
        f"ms; tenant-B: {ANALYTICS_QPS:.0f} QPS open-loop analytics; p99 "
        f"inflation native "
        f"{report.value('native tenant-A p99 inflation', 'shared'):.2f}x vs "
        f"SGX {report.value('SGX tenant-A p99 inflation', 'shared'):.2f}x"
    )
    return report
