"""Figure 11: static vs dynamically sized enclave under materialization.

The SGXv2-optimized RHO join materializes its full result table.  When the
enclave is pre-sized for the output, materialization is cheap streaming;
when the enclave must grow page by page (EDMM: EAUG + EACCEPT + OCALLs),
throughput collapses to ~4.5 % of the static configuration.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import RadixJoin
from repro.enclave.enclave import EnclaveConfig
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair
from repro.units import GiB, MiB

EXPERIMENT_ID = "fig11"
TITLE = "Materializing RHO: statically pre-sized vs EDMM-growing enclave"
PAPER_REFERENCE = "Figure 11"


def _throughput(machine, config, seed, *, dynamic: bool) -> float:
    sim = common.make_machine(machine)
    build, probe = generate_join_relation_pair(
        common.BUILD_BYTES,
        common.PROBE_BYTES,
        seed=seed,
        physical_row_cap=config.row_cap,
    )
    if dynamic:
        # Enough static heap for the inputs and join scratch, but none for
        # the materialized output: every result page is an EDMM growth.
        inputs = int(build.logical_bytes + probe.logical_bytes)
        scratch = inputs  # partition buffers
        enclave_config = EnclaveConfig(
            heap_bytes=inputs + scratch + 16 * MiB,
            node=0,
            dynamic=True,
            max_bytes=16 * GiB,
        )
    else:
        enclave_config = EnclaveConfig(heap_bytes=16 * GiB, node=0)
    with sim.context(
        common.SETTING_SGX_IN,
        threads=common.SOCKET_THREADS,
        enclave_config=enclave_config,
    ) as ctx:
        result = RadixJoin(CodeVariant.UNROLLED).run(
            ctx, build, probe, materialize=True
        )
    return common.mrows(result.throughput_rows_per_s(sim.frequency_hz))


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Throughput with a static vs a dynamically growing enclave."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for label, dynamic in (("static enclave", False), ("dynamic enclave", True)):

        def measure(seed: int, _dyn=dynamic) -> float:
            return _throughput(machine, config, seed, dynamic=_dyn)

        report.add(label, "throughput", common.measure_stats(measure, config),
                   "M rows/s")
    static = report.value("static enclave", "throughput")
    dynamic = report.value("dynamic enclave", "throughput")
    report.notes.append(
        f"dynamic enclave reaches {dynamic / static:.1%} of static "
        "(paper: 4.5 %)"
    )
    return report
