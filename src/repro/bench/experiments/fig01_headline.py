"""Figure 1: the headline join comparison.

Joining a 100 MB (hash) and a 400 MB (probe) table with 16 threads inside
an SGXv2 enclave: the SGXv1-optimized CrkJoin is not competitive (blue), a
state-of-the-art radix join is the better starting point (orange), and with
the unroll/reorder optimization (green) it approaches the join outside the
enclave (red).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import CrkJoin, RadixJoin
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair

EXPERIMENT_ID = "fig01"
TITLE = "Headline join comparison (100 MB x 400 MB, 16 threads)"
PAPER_REFERENCE = "Figure 1"

_BARS = (
    ("CrkJoin (SGXv1-opt.) in SGX", CrkJoin, CodeVariant.NAIVE, common.SETTING_SGX_IN),
    ("RHO in SGX", RadixJoin, CodeVariant.NAIVE, common.SETTING_SGX_IN),
    ("RHO SGXv2-optimized in SGX", RadixJoin, CodeVariant.UNROLLED, common.SETTING_SGX_IN),
    ("RHO outside enclave", RadixJoin, CodeVariant.NAIVE, common.SETTING_PLAIN),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Measure the four Fig. 1 bars (M rows/s, mean ± std)."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for label, join_cls, variant, setting in _BARS:

        def measure(seed: int, _cls=join_cls, _var=variant, _set=setting) -> float:
            sim = common.make_machine(machine)
            build, probe = generate_join_relation_pair(
                common.BUILD_BYTES,
                common.PROBE_BYTES,
                seed=seed,
                physical_row_cap=config.row_cap,
            )
            with sim.context(_set, threads=common.SOCKET_THREADS) as ctx:
                result = _cls(_var).run(ctx, build, probe)
            return common.mrows(result.throughput_rows_per_s(sim.frequency_hz))

        report.add(label, "throughput", common.measure_stats(measure, config), "M rows/s")
    crk = report.value("CrkJoin (SGXv1-opt.) in SGX", "throughput")
    opt = report.value("RHO SGXv2-optimized in SGX", "throughput")
    report.notes.append(
        f"SGXv2-optimized RHO over CrkJoin: {opt / crk:.1f}x (paper: ~20x)"
    )
    return report
