"""Figure 15: pmbw-style linear reads/writes, 16 cores, SGX relative to plain.

64-bit and 512-bit streaming kernels over array sizes from cache-resident
to DRAM-sized.  Expected: equal performance in cache; outside the cache the
enclave loses at most ~5.5 % (64-bit reads), ~3 % (512-bit reads), ~2 %
(writes), with slightly *better* relative performance around the cache
boundary.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.micro import LinearAccessBenchmark, LinearOp
from repro.machine import SimMachine

EXPERIMENT_ID = "fig15"
TITLE = "Linear reads/writes (64/512-bit, 16 cores): SGX relative to plain"
PAPER_REFERENCE = "Figure 15"

ARRAY_BYTES = (1e6, 8e6, 24e6, 100e6, 1e9, 8e9)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Relative SGX bandwidth for the four pmbw kernels vs array size."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    cap = 1_000_000 if quick else 16_000_000
    for op in LinearOp:
        for size in ARRAY_BYTES:

            def measure(seed: int, _op=op, _size=size) -> float:
                bench = LinearAccessBenchmark(_size, physical_cap_bytes=cap)
                sim = common.make_machine(machine)
                with sim.context(
                    common.SETTING_PLAIN, threads=common.SOCKET_THREADS
                ) as ctx:
                    plain = bench.run(ctx, _op, seed=seed)
                sim = common.make_machine(machine)
                with sim.context(
                    common.SETTING_SGX_IN, threads=common.SOCKET_THREADS
                ) as ctx:
                    sgx = bench.run(ctx, _op, seed=seed)
                return plain.cycles / sgx.cycles

            report.add(op.name.lower(), size,
                       common.measure_stats(measure, config), "x of plain")
    worst = min(
        report.value(op.name.lower(), ARRAY_BYTES[-1]) for op in LinearOp
    )
    report.notes.append(
        f"worst out-of-cache relative performance {worst:.3f} "
        "(paper: 0.945 for 64-bit reads); in-cache sizes at 1.0"
    )
    return report
