"""Figure 16: cross-NUMA column scans with and without SGX.

Scan threads pinned to the node the enclave was *not* allocated on force
all traffic across the UPI links (67.2 GB/s aggregate).  Expected: the
local scan is fastest; the plain cross-NUMA scan saturates the UPI with
8-16 threads; the SGX cross-NUMA scan starts at ~77 % of the plain
cross-NUMA scan (UPI-encryption latency) and recovers to ~96 % at 16
threads, where both are bound by the links themselves.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.scans import BitvectorScan, RangePredicate
from repro.exec.placement import Placement
from repro.machine import SimMachine
from repro.tables.table import Column

EXPERIMENT_ID = "fig16"
TITLE = "Cross-NUMA scans: local plain vs cross plain vs cross SGX"
PAPER_REFERENCE = "Figure 16"

COLUMN_BYTES = 4e9
THREAD_COUNTS = (1, 2, 4, 8, 16)

_CASES = (
    ("plain, NUMA-local", common.SETTING_PLAIN, False),
    ("plain, cross-NUMA", common.SETTING_PLAIN, True),
    ("SGX, cross-NUMA", common.SETTING_SGX_IN, True),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Scan throughput vs thread count for the three placements."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    cap = 100_000 if quick else 4_000_000
    scan = BitvectorScan()
    for threads in THREAD_COUNTS:
        for label, setting, cross in _CASES:

            def measure(seed: int, _threads=threads, _set=setting, _cross=cross):
                sim = common.make_machine(machine)
                rng = np.random.default_rng(seed)
                column = Column(
                    "values", rng.integers(0, 256, cap, dtype=np.uint8)
                )
                exec_node = 1 if _cross else 0
                placement = Placement.on_node(sim.topology, exec_node, _threads)
                with sim.context(_set, data_node=0, placement=placement) as ctx:
                    result = scan.run(
                        ctx, column, RangePredicate(64, 192),
                        sim_scale=COLUMN_BYTES / column.nbytes,
                    )
                return common.gb_per_s(
                    result.read_throughput_bytes_per_s(sim.frequency_hz)
                )

            report.add(label, threads,
                       common.measure_stats(measure, config), "GB/s")
    rel1 = report.value("SGX, cross-NUMA", 1) / report.value(
        "plain, cross-NUMA", 1
    )
    rel16 = report.value("SGX, cross-NUMA", 16) / report.value(
        "plain, cross-NUMA", 16
    )
    report.notes.append(
        f"SGX cross-NUMA relative to plain cross-NUMA: {rel1:.2f} at 1 thread "
        f"(paper 0.77) -> {rel16:.2f} at 16 threads (paper 0.96); UPI bound "
        "~67.2 GB/s"
    )
    return report
