"""Table 1: the benchmark hardware, as encoded in the simulator.

Reports every row of the paper's hardware table from the
:class:`~repro.hardware.spec.HardwareSpec` the simulation runs on, so any
deviation between the simulated platform and the paper's testbed is visible
in the harness output.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.machine import SimMachine
from repro.units import GiB, KiB, MiB

EXPERIMENT_ID = "tab01"
TITLE = "Benchmark hardware (simulated testbed)"
PAPER_REFERENCE = "Table 1"


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Emit the Table 1 rows from the active hardware spec."""
    del quick  # the table is static
    spec = common.make_machine(machine).spec
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    report.add("Sockets", "count", spec.sockets, "")
    report.add("Cores per socket", "count", spec.cores_per_socket, "")
    report.add("Threads per socket", "count",
               spec.cores_per_socket * spec.threads_per_core, "")
    report.add("Base frequency", "GHz", spec.base_frequency_hz / 1e9, "GHz")
    report.add("L1d per core", "KB", spec.l1d.capacity_bytes / KiB, "KiB")
    report.add("L2 per core", "KB", spec.l2.capacity_bytes / KiB, "KiB")
    report.add("L3 per socket", "MB", spec.l3.capacity_bytes / MiB, "MiB")
    report.add("Memory channels per socket", "count", spec.memory.channels, "")
    report.add("Memory per socket", "GB",
               spec.memory.capacity_bytes / GiB, "GiB")
    report.add("EPC per socket", "GB", spec.epc_bytes_per_socket / GiB, "GiB")
    report.add("UPI links", "count", spec.upi_links, "")
    report.add("UPI aggregate bandwidth", "GB/s",
               spec.upi_total_bandwidth_bytes / 1e9, "GB/s")
    report.notes.append(f"platform: {spec.name}")
    for key, value in spec.notes.items():
        report.notes.append(f"{key}: {value}")
    return report
