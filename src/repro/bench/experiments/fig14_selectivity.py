"""Figure 14: row-id scan with varying selectivity (write rate), 16 threads.

A 4 GB 8-bit column is scanned with selectivities from 0 to 100 %; every
match materializes a 64-bit row id, so the write rate reaches 8 bytes per
input byte at 100 %.  Expected: the read throughput decreases with the
write rate *to the same degree* inside and outside the enclave — write
pressure does not stress the memory encryption engine disproportionately.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.scans import RangePredicate, RowIdScan
from repro.machine import SimMachine
from repro.tables.table import Column

EXPERIMENT_ID = "fig14"
TITLE = "Row-id scan: throughput vs selectivity (write rate), 16 threads"
PAPER_REFERENCE = "Figure 14"

COLUMN_BYTES = 4e9
SELECTIVITIES = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)

_SETTINGS = (
    ("Plain CPU", common.SETTING_PLAIN),
    ("SGX (Data in Enclave)", common.SETTING_SGX_IN),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Read throughput (GB/s) vs selectivity for both settings."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    cap = 100_000 if quick else 4_000_000
    scan = RowIdScan()
    for selectivity in SELECTIVITIES:
        for setting_label, setting in _SETTINGS:

            def measure(seed: int, _sel=selectivity, _set=setting) -> float:
                sim = common.make_machine(machine)
                rng = np.random.default_rng(seed)
                column = Column(
                    "values", rng.integers(0, 256, cap, dtype=np.uint8)
                )
                predicate = RangePredicate.with_selectivity(column.data, _sel)
                with sim.context(_set, threads=common.SOCKET_THREADS) as ctx:
                    result = scan.run(
                        ctx, column, predicate,
                        sim_scale=COLUMN_BYTES / column.nbytes,
                    )
                return common.gb_per_s(
                    result.read_throughput_bytes_per_s(sim.frequency_hz)
                )

            report.add(setting_label, selectivity,
                       common.measure_stats(measure, config), "GB/s")
    drop_plain = report.value("Plain CPU", 1.0) / report.value("Plain CPU", 0.0)
    drop_sgx = report.value("SGX (Data in Enclave)", 1.0) / report.value(
        "SGX (Data in Enclave)", 0.0
    )
    report.notes.append(
        f"throughput at 100 % vs 0 % selectivity: plain {drop_plain:.2f}, "
        f"SGX {drop_sgx:.2f} — the write rate hurts both settings equally"
    )
    return report
