"""Extension: grouped aggregation under the enclave cost model.

A hash group-by is a value-carrying histogram, so it inherits both Sec. 4
effects: the loop-execution penalty while the group table is cache-resident
(few groups) and the random-write penalty once it spills past L3 (many
groups) — and the unroll/reorder optimization recovers most of both.  This
sweep maps the in-enclave relative throughput over the group count for the
naive and optimized variants.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.ops.aggregate import AggFunc, HashAggregate
from repro.machine import SimMachine
from repro.memory.access import CodeVariant

EXPERIMENT_ID = "ext03"
TITLE = "Extension: hash group-by, relative in-enclave throughput vs groups"
PAPER_REFERENCE = "Sec. 4.1/4.2 applied to aggregation"

#: Logical input: 400 MB of <key, value> rows.
LOGICAL_ROWS = 50e6

GROUP_COUNTS = (1_000, 100_000, 1_000_000, 10_000_000)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Relative SGX throughput per group count, naive vs unrolled."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    physical = 100_000 if quick else 1_000_000
    for groups in GROUP_COUNTS:
        for variant in (CodeVariant.NAIVE, CodeVariant.UNROLLED):

            def measure(seed: int, _groups=groups, _var=variant) -> float:
                rng = np.random.default_rng(seed)
                # Physical group count scales with the physical rows.
                physical_groups = max(1, int(_groups * physical / LOGICAL_ROWS))
                keys = rng.integers(0, physical_groups, physical)
                values = rng.integers(0, 1000, physical)
                scale = LOGICAL_ROWS / physical

                def cycles(setting):
                    sim = common.make_machine(machine)
                    with sim.context(
                        setting, threads=common.SOCKET_THREADS
                    ) as ctx:
                        result = HashAggregate(_var).run(
                            ctx, keys, values,
                            (AggFunc.COUNT, AggFunc.SUM),
                            sim_scale=scale,
                        )
                    return result.cycles

                return cycles(common.SETTING_PLAIN) / cycles(
                    common.SETTING_SGX_IN
                )

            report.add(f"{variant.value}", groups,
                       common.measure_stats(measure, config), "x of plain")
    few = report.value("naive", GROUP_COUNTS[0])
    many = report.value("naive", GROUP_COUNTS[-1])
    opt_many = report.value("unrolled", GROUP_COUNTS[-1])
    report.notes.append(
        f"naive: {few:.2f} relative with a cache-resident table, {many:.2f} "
        f"once it spills past L3; unrolling recovers to {opt_many:.2f}"
    )
    return report
