"""Figure 4: single-threaded PHT join vs build-table size, plus phase split.

Left: relative in-enclave throughput falls from ~95 % (1 MB, cache
resident) toward ~50 % as the hash table grows past L3 — the random-access
penalty of Sec. 4.1.  Right: at 100 MB the build phase degrades much more
than the probe phase (random writes hurt more than random reads).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import ParallelHashJoin
from repro.machine import SimMachine
from repro.tables import generate_join_relation_pair

EXPERIMENT_ID = "fig04"
TITLE = "Single-threaded PHT: relative throughput vs build size + phases"
PAPER_REFERENCE = "Figure 4"

#: Build-side sizes of the sweep (MB), per the paper's 1 MB -> 100 MB axis.
BUILD_SIZES_MB = (1, 5, 10, 25, 50, 100)


def _join_cycles(machine, config, seed, build_mb, setting):
    sim = common.make_machine(machine)
    build, probe = generate_join_relation_pair(
        build_mb * 1e6,
        common.PROBE_BYTES,
        seed=seed,
        physical_row_cap=config.row_cap,
    )
    with sim.context(setting, threads=1) as ctx:
        return ParallelHashJoin().run(ctx, build, probe)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Relative throughput sweep plus the 100 MB phase breakdown."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for build_mb in BUILD_SIZES_MB:

        def measure(seed: int, _mb=build_mb) -> float:
            plain = _join_cycles(machine, config, seed, _mb, common.SETTING_PLAIN)
            sgx = _join_cycles(machine, config, seed, _mb, common.SETTING_SGX_IN)
            return plain.cycles / sgx.cycles

        report.add(
            "SGX relative throughput", build_mb,
            common.measure_stats(measure, config), "x of plain",
        )
    # Phase breakdown at 100 MB (single seed; the split is deterministic).
    plain = _join_cycles(machine, config, 42, 100, common.SETTING_PLAIN)
    sgx = _join_cycles(machine, config, 42, 100, common.SETTING_SGX_IN)
    for phase in ("build", "probe"):
        report.add(
            "plain phase time", phase, plain.phase_cycles[phase], "cycles"
        )
        report.add("SGX phase time", phase, sgx.phase_cycles[phase], "cycles")
        report.add(
            "SGX phase slowdown", phase,
            sgx.phase_cycles[phase] / plain.phase_cycles[phase], "x",
        )
    report.notes.append(
        "expected: ~0.95 relative at 1 MB falling past L3; build slowdown "
        ">> probe slowdown at 100 MB (paper: build up to ~9x)"
    )
    return report
