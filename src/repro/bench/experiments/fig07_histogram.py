"""Figure 7: the histogram micro-benchmark (Listings 1 and 2).

Radix-histogram creation over a fixed-size random array for typical bin
counts, in all three execution settings, naive vs unrolled.  Expected:
naive code is ~225 % slower whenever the CPU is in enclave mode —
*independent of data location* — and manual unrolling/reordering brings
the slowdown to ~20 %.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.micro import HistogramBenchmark
from repro.machine import SimMachine
from repro.memory.access import CodeVariant

EXPERIMENT_ID = "fig07"
TITLE = "Radix histogram creation vs bin count, three settings"
PAPER_REFERENCE = "Figure 7"

#: Bin counts: 2^4 .. 2^14 (typical radix fan-outs).
BIN_COUNTS = tuple(1 << b for b in (4, 6, 8, 10, 12, 14))

#: Fixed input size of the scanned array.
INPUT_BYTES = 400e6

_SETTINGS = (
    ("Plain CPU", common.SETTING_PLAIN),
    ("SGX (Data in Enclave)", common.SETTING_SGX_IN),
    ("SGX (Data outside Enclave)", common.SETTING_SGX_OUT),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Histogram creation time per setting, naive and unrolled."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    cap = 200_000 if quick else 2_000_000
    bench = HistogramBenchmark(INPUT_BYTES, physical_cap_rows=cap)
    for bins in BIN_COUNTS:
        for variant in (CodeVariant.NAIVE, CodeVariant.UNROLLED):
            for setting_label, setting in _SETTINGS:

                def measure(
                    seed: int, _bins=bins, _var=variant, _set=setting
                ) -> float:
                    sim = common.make_machine(machine)
                    with sim.context(_set) as ctx:
                        result = bench.run(ctx, bins=_bins, variant=_var, seed=seed)
                    return result.cycles

                report.add(
                    f"{variant.value}: {setting_label}", bins,
                    common.measure_stats(measure, config), "cycles",
                )
    naive_slow = report.value(
        "naive: SGX (Data in Enclave)", BIN_COUNTS[2]
    ) / report.value("naive: Plain CPU", BIN_COUNTS[2])
    opt_slow = report.value(
        "unrolled: SGX (Data in Enclave)", BIN_COUNTS[2]
    ) / report.value("unrolled: Plain CPU", BIN_COUNTS[2])
    report.notes.append(
        f"naive in-enclave slowdown {naive_slow:.2f}x (paper 3.25x), "
        f"unrolled {opt_slow:.2f}x (paper 1.2x); independent of data location"
    )
    return report
