"""Figure 6: single-threaded RHO phase breakdown, ± unroll optimization.

Upper: with the naive loops, the histogram phases are the most slowed
inside SGX (up to ~4x), followed by the copy/scatter and build phases; the
probe ("join") phase is nearly unaffected.  Lower: with manual unrolling
and reordering, the slower phases improve dramatically.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.joins import RadixJoin
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair
from repro.trace import Tracer, current_tracer, phase_breakdown, tee, use_tracer

EXPERIMENT_ID = "fig06"
TITLE = "RHO phase breakdown (1 thread), naive vs unrolled"
PAPER_REFERENCE = "Figure 6"

PHASES = ("hist1", "copy1", "hist2", "copy2", "build", "join")


def _phases(machine, config, variant, setting, seed=42):
    """One traced RHO run: (total cycles, phase -> cycles from the trace).

    The per-phase numbers are read back from the trace's operator-phase
    spans — the same records ``--trace`` exports — so the figure and any
    offline breakdown of the trace file agree by construction.
    """
    sim = common.make_machine(machine)
    build, probe = generate_join_relation_pair(
        common.BUILD_BYTES,
        common.PROBE_BYTES,
        seed=seed,
        physical_row_cap=config.row_cap,
    )
    tracer = Tracer(label=f"fig06-{variant.value}")
    with use_tracer(tee(current_tracer(), tracer)):
        with sim.context(setting, threads=1) as ctx:
            result = RadixJoin(variant).run(ctx, build, probe)
    return result.cycles, phase_breakdown(tracer, setting=setting.label)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Per-phase cycles for plain/SGX x naive/unrolled."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    results = {}
    for variant in (CodeVariant.NAIVE, CodeVariant.UNROLLED):
        for setting_label, setting in (
            ("plain", common.SETTING_PLAIN),
            ("sgx", common.SETTING_SGX_IN),
        ):
            results[(variant, setting_label)] = _phases(
                machine, config, variant, setting
            )
    for variant in (CodeVariant.NAIVE, CodeVariant.UNROLLED):
        _, plain = results[(variant, "plain")]
        _, sgx = results[(variant, "sgx")]
        for phase in PHASES:
            report.add(
                f"{variant.value}: plain", phase, plain[phase], "cycles",
            )
            report.add(
                f"{variant.value}: sgx", phase, sgx[phase], "cycles"
            )
            report.add(
                f"{variant.value}: sgx slowdown", phase,
                sgx[phase] / plain[phase], "x",
            )
    naive_cycles, _ = results[(CodeVariant.NAIVE, "sgx")]
    opt_cycles, _ = results[(CodeVariant.UNROLLED, "sgx")]
    report.notes.append(
        f"unrolling cuts in-enclave run time by "
        f"{(1 - opt_cycles / naive_cycles) * 100:.0f} % (paper: 43 %)"
    )
    return report
