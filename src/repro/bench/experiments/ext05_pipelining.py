"""Extension: materializing vs pipelined query execution in the enclave.

The paper's framework fully materializes every operator (Sec. 6, the
MonetDB scheme).  This extension asks what pipelining would buy an enclave
DBMS, in two regimes:

* **Statically sized enclave** (the paper's recommended configuration):
  almost nothing — sequential writes cost SGXv2 only ~2 %, so skipping
  intermediate materialization saves low single digits.  The enclave's
  problem is the join loops, not the materialization.
* **Dynamically sized enclave** (an engine that allocates intermediates
  on demand): a lot — every materialized intermediate grows the enclave
  through EDMM (Fig. 11's per-page cost), which pipelining avoids
  entirely.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.queries import QueryExecutor, TPCH_QUERIES
from repro.enclave.enclave import EnclaveConfig
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_tpch
from repro.units import GiB

EXPERIMENT_ID = "ext05"
TITLE = "Extension: materializing vs pipelined execution, static vs EDMM"
PAPER_REFERENCE = "Sec. 6 design choice (no pipelining) x Fig. 11"

QUERIES = ("Q3", "Q12")


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Query runtimes (ms) for the four execution-mode x sizing cases."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for query in QUERIES:
        for label, pipelined, dynamic in (
            ("materializing, static enclave", False, False),
            ("pipelined, static enclave", True, False),
            ("materializing, EDMM enclave", False, True),
            ("pipelined, EDMM enclave", True, True),
        ):

            def measure(seed: int, _q=query, _pipe=pipelined, _dyn=dynamic):
                sim = common.make_machine(machine)
                data = generate_tpch(
                    10.0, seed=seed, physical_sf_cap=config.tpch_sf_cap
                )
                tables = {
                    "customer": data.customer,
                    "orders": data.orders,
                    "lineitem": data.lineitem,
                    "part": data.part,
                }
                if _dyn:
                    # Base tables fit statically; every intermediate and
                    # all join scratch grows the enclave via EDMM.
                    enclave_config = EnclaveConfig(
                        heap_bytes=int(data.total_logical_bytes) + (64 << 20),
                        node=0,
                        dynamic=True,
                        max_bytes=64 * GiB,
                    )
                else:
                    enclave_config = EnclaveConfig(heap_bytes=24 * GiB, node=0)
                with sim.context(
                    common.SETTING_SGX_IN,
                    threads=common.SOCKET_THREADS,
                    enclave_config=enclave_config,
                ) as ctx:
                    result = QueryExecutor(
                        CodeVariant.UNROLLED, pipelined=_pipe
                    ).run(ctx, TPCH_QUERIES[_q](), tables)
                return result.seconds(sim.frequency_hz) * 1e3

            report.add(label, query, common.measure_stats(measure, config), "ms")
    for query in QUERIES:
        static_save = 1 - report.value(
            "pipelined, static enclave", query
        ) / report.value("materializing, static enclave", query)
        edmm_save = 1 - report.value(
            "pipelined, EDMM enclave", query
        ) / report.value("materializing, EDMM enclave", query)
        report.notes.append(
            f"{query}: pipelining saves {static_save:.1%} with a static "
            f"enclave but {edmm_save:.1%} with an EDMM-growing one"
        )
    return report
