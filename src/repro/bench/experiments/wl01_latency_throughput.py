"""wl01: latency-throughput curves of a served query mix, native vs SGX.

An open-loop (Poisson) tenant submits a mixed OLAP stream — interactive
scans, ad-hoc joins, a TPC-H plan — at increasing offered load against one
socket.  The serving engine runs the *naive* kernels (a lift-and-shift port
into the enclave; Fig. 17 measures +42 % average overhead for exactly that
code), so the enclave's per-query service times are substantially longer
and the serving capacity is correspondingly lower.

Expected shape: at low load both settings serve near the offered rate with
flat percentiles; as offered load approaches the native capacity, the
SGX-in configuration — whose capacity is lower — saturates first: its
achieved QPS plateaus below native and its tail latencies blow up while
native tails are still bounded.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common, workload_common
from repro.bench.report import ExperimentReport
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.trace import Tracer, current_tracer, serving_breakdown, tee, use_tracer
from repro.workload import (
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)

EXPERIMENT_ID = "wl01"
TITLE = "Serving a mixed OLAP stream: latency vs offered load, native vs SGX"
PAPER_REFERENCE = "serving extension of Fig. 17 / Sec. 6"

#: The tenant's query mix: mostly interactive scans, some heavy analytics.
MIX_WEIGHTS = {"scan-small": 0.5, "join-medium": 0.3, "q12": 0.2}

#: Offered load as fractions of the *native* serving capacity.
LOAD_FRACTIONS = (0.4, 0.7, 0.9, 1.1, 1.3)

_SERIES = {"Plain CPU": "native", "SGX (Data in Enclave)": "SGX"}


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """p50/p95/p99 latency and achieved QPS per offered-load fraction."""
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    catalog = JobCatalog(machine, quick=quick, variant=CodeVariant.NAIVE)
    engine = ServingEngine(catalog)
    mix = QueryMix.of(MIX_WEIGHTS)
    queries = workload_common.target_queries(quick)

    # Capacity of the native configuration anchors the x axis for both
    # settings, so equal x means equal offered QPS.
    native_costs = {
        name: catalog.cost(engine.templates[name], common.SETTING_PLAIN)
        for name in MIX_WEIGHTS
    }
    native_capacity = workload_common.capacity_qps(
        native_costs, MIX_WEIGHTS, cores=16
    )
    sgx_costs = {
        name: catalog.cost(engine.templates[name], common.SETTING_SGX_IN)
        for name in MIX_WEIGHTS
    }
    sgx_capacity = workload_common.capacity_qps(sgx_costs, MIX_WEIGHTS, cores=16)

    for setting, short in (
        (common.SETTING_PLAIN, "native"),
        (common.SETTING_SGX_IN, "SGX"),
    ):
        for fraction in LOAD_FRACTIONS:
            qps = fraction * native_capacity
            config = WorkloadConfig(
                setting=setting,
                open_streams=(
                    OpenLoopStream(
                        "tenant",
                        qps=qps,
                        mix=mix,
                        seed=workload_common.stream_seed(0),
                    ),
                ),
                duration_s=queries / qps,
                cores=16,
                policy="fifo",
            )
            # Each serving run records into its own tracer (tee'd with any
            # CLI-level tracer), and the queueing/service/EDMM/interference
            # decomposition is read back from the trace — the same records
            # ``--trace`` exports — instead of bespoke bookkeeping.
            run_tracer = Tracer(label=f"{short}@{fraction}")
            with use_tracer(tee(current_tracer(), run_tracer)):
                metrics = engine.run(config)
            workload_common.add_latency_rows(
                report, metrics, short, fraction
            )
            report.add(f"{short} achieved QPS", fraction,
                       metrics.achieved_qps(), "QPS")
            workload_common.add_breakdown_rows(
                report, serving_breakdown(run_tracer), short, fraction
            )
    report.notes.append(
        f"mix capacity: native {native_capacity:.1f} QPS, SGX "
        f"{sgx_capacity:.1f} QPS ({sgx_capacity / native_capacity:.0%}); "
        "x is offered load as a fraction of the native capacity"
    )
    top = LOAD_FRACTIONS[-1]
    report.notes.append(
        f"at {top:.1f}x native capacity: achieved native "
        f"{report.value('native achieved QPS', top):.1f} vs SGX "
        f"{report.value('SGX achieved QPS', top):.1f} QPS; p99 native "
        f"{report.value('native p99', top):.0f} vs SGX "
        f"{report.value('SGX p99', top):.0f} ms"
    )
    report.notes.append(
        f"trace decomposition at {top:.1f}x: queueing share native "
        f"{report.value('native queueing share', top):.0%} vs SGX "
        f"{report.value('SGX queueing share', top):.0%} — the enclave's "
        "lower capacity converts offered load into queue time first"
    )
    return report
