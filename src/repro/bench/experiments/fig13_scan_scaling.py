"""Figure 13: column-scan thread scaling, plain vs SGX.

A 4 GB column scanned with 1..16 threads.  Expected: identical scaling
inside and outside the enclave, both saturating the socket's memory
bandwidth at high thread counts — SGXv2's memory encryption engine is not
a multi-core scan bottleneck.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.core.scans import BitvectorScan, RangePredicate
from repro.machine import SimMachine
from repro.tables.table import Column

EXPERIMENT_ID = "fig13"
TITLE = "Scan scale-up: 1..16 threads, plain vs SGX"
PAPER_REFERENCE = "Figure 13"

COLUMN_BYTES = 4e9
THREAD_COUNTS = (1, 2, 4, 8, 16)

_SETTINGS = (
    ("Plain CPU", common.SETTING_PLAIN),
    ("SGX (Data in Enclave)", common.SETTING_SGX_IN),
)


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Aggregate scan throughput (GB/s) vs thread count."""
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    cap = 100_000 if quick else 4_000_000
    scan = BitvectorScan()
    for threads in THREAD_COUNTS:
        for setting_label, setting in _SETTINGS:

            def measure(seed: int, _threads=threads, _set=setting) -> float:
                sim = common.make_machine(machine)
                rng = np.random.default_rng(seed)
                column = Column(
                    "values", rng.integers(0, 256, cap, dtype=np.uint8)
                )
                with sim.context(_set, threads=_threads) as ctx:
                    result = scan.run(
                        ctx, column, RangePredicate(64, 192),
                        sim_scale=COLUMN_BYTES / column.nbytes,
                    )
                return common.gb_per_s(
                    result.read_throughput_bytes_per_s(sim.frequency_hz)
                )

            report.add(setting_label, threads,
                       common.measure_stats(measure, config), "GB/s")
    spec = common.make_machine(machine).spec
    limit = spec.socket_stream_bandwidth_bytes() / 1e9
    plain16 = report.value("Plain CPU", 16)
    sgx16 = report.value("SGX (Data in Enclave)", 16)
    report.notes.append(
        f"16-thread throughput: plain {plain16:.0f} GB/s, SGX {sgx16:.0f} GB/s "
        f"(socket bandwidth limit ~{limit:.0f} GB/s); scaling matches"
    )
    return report
