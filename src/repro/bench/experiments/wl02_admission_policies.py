"""wl02: admission-policy ablation under a constrained EPC budget.

An SGX-in serving run where bulk joins (2 GB EPC working set each) share
the machine with interactive scans, and the EPC budget only fits two bulk
joins at once.  Three admission policies serve the identical arrival
sequence:

* **fifo** — admits by arrival order whenever cores are free; bulk joins
  beyond the EPC budget are admitted anyway and their overflowing working
  set is served at the EDMM/paging penalty (the Fig. 11 failure mode) —
  each such admission occupies cores for several times longer, snowballing
  the queue;
* **epc-aware** — holds a join back until its whole working set fits the
  remaining budget, so every admitted query runs at full speed;
* **epc-aware+bypass** — same, plus a small-query lane: scans are never
  stuck behind a blocked bulk join.

Expected shape: EPC-aware admission beats FIFO on p99 at high load, and
the bypass lane cuts the interactive tenant's p99 further.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments import common, workload_common
from repro.bench.report import ExperimentReport
from repro.machine import SimMachine
from repro.workload import (
    JobCatalog,
    OpenLoopStream,
    QueryMix,
    ServingEngine,
    WorkloadConfig,
)

EXPERIMENT_ID = "wl02"
TITLE = "EPC-aware admission control vs FIFO under memory pressure"
PAPER_REFERENCE = "serving extension of Fig. 11 / Sec. 4.4"

MIX_WEIGHTS = {"scan-small": 0.6, "join-big": 0.4}

#: Offered load relative to the SGX serving capacity of the mix.
LOAD_FRACTION = 0.9

#: EPC budget as a multiple of one bulk join's working set: two fit, the
#: third would force EDMM growth.
BUDGET_WORKING_SETS = 2.2

POLICIES = ("fifo", "epc-aware", "epc-aware+bypass")


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """p50/p95/p99, achieved QPS, and decision counters per policy."""
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    catalog = JobCatalog(machine, quick=quick)
    engine = ServingEngine(catalog)
    mix = QueryMix.of(MIX_WEIGHTS)
    queries = workload_common.target_queries(quick)

    costs = {
        name: catalog.cost(engine.templates[name], common.SETTING_SGX_IN)
        for name in MIX_WEIGHTS
    }
    capacity = workload_common.capacity_qps(costs, MIX_WEIGHTS, cores=16)
    qps = LOAD_FRACTION * capacity
    budget = BUDGET_WORKING_SETS * costs["join-big"].working_set_bytes
    bypass = 2 * costs["scan-small"].working_set_bytes

    for policy in POLICIES:
        config = WorkloadConfig(
            setting=common.SETTING_SGX_IN,
            open_streams=(
                OpenLoopStream(
                    "tenants",
                    qps=qps,
                    mix=mix,
                    seed=workload_common.stream_seed(0),
                ),
            ),
            duration_s=queries / qps,
            cores=16,
            policy=policy,
            bypass_bytes=bypass if policy.endswith("+bypass") else None,
            epc_budget_bytes=budget,
        )
        metrics = engine.run(config)
        workload_common.add_latency_rows(report, metrics, policy, "latency")
        report.add(f"{policy} achieved QPS", "latency",
                   metrics.achieved_qps(), "QPS")
        report.add(
            f"{policy} scan p99",
            "latency",
            metrics.latency_percentile_s(99, template="scan-small") * 1e3,
            "ms",
        )
        report.add(f"{policy} EDMM admissions", "latency",
                   metrics.counters.edmm_admissions, "queries")
        report.notes.append(workload_common.counters_note(policy, metrics))
    report.notes.append(
        f"offered {qps:.1f} QPS ({LOAD_FRACTION:.0%} of the mix capacity "
        f"{capacity:.1f}); EPC budget {budget / 1e9:.1f} GB = "
        f"{BUDGET_WORKING_SETS} bulk-join working sets"
    )
    return report
