"""Extension: cost-based planning vs the oracle across the EPC crossover.

The ablation behind :mod:`repro.planner`: on each platform (the paper's
SGXv2 testbed and the SGXv1-style legacy platform) a foreign-key join
grows until its working set overruns the EPC, and three planning policies
pick the join algorithm at every size:

* **oracle** — run every candidate, keep the fastest (the upper bound);
* **cost** — the planner's analytical choice, made *without* executing
  any candidate at scale;
* **native-best** — the choice a SGX-oblivious optimizer makes: the plan
  that is fastest on the plain CPU, forced to run in the enclave (what
  DuckDB-SGX2-style engines with unmodified optimizers do).

On SGXv2 the three mostly agree (64 GB EPC hides the working set).  On
the legacy platform they diverge exactly where the paper says they must:
once RHO's partitioning scratch overruns the ~93 MB EPC, the native-best
plan (RHO-unrolled) collapses into paging while the paging-tolerant
plans take over (MWAY's sequential merges win outright and CrkJoin
overtakes RHO by ~6x — the CrkJoin/RHO crossover the dedicated rows
track) — and the cost-based planner follows, because it prices the same
paging terms the simulator charges.  The match-rate rows quantify how
often cost agrees with oracle (the acceptance bar is >= 90 % per
platform).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bench.experiments import common
from repro.bench.report import ExperimentReport
from repro.bench.runner import DEFAULT_BASE_SEED
from repro.hardware.platforms import sgxv1_calibration, sgxv1_testbed
from repro.machine import SimMachine
from repro.planner import PlanCandidate, Planner, build_join, enumerate_candidates
from repro.tables import generate_join_relation_pair
from repro.workload.jobs import JobKind, JobTemplate

EXPERIMENT_ID = "ext07"
TITLE = "Extension: planner ablation (oracle vs cost-based vs native-best)"
PAPER_REFERENCE = "operationalizes Fig. 3/8's ranking flip as a planner"

#: Build-side sizes (MB); probes are 4x, the paper's join shape.  The
#: legacy platform's ~93 MB EPC puts the RHO working-set overflow (2 x
#: (build + probe)) between the 4 MB and 16 MB points.
BUILD_SIZES_MB = (4, 8, 16, 32, 64, 128)
PROBE_FACTOR = 4.0

#: The swept platforms: label -> fresh machine factory.
def _sgxv2_machine() -> SimMachine:
    return SimMachine()


def _sgxv1_machine() -> SimMachine:
    return SimMachine(sgxv1_testbed(), sgxv1_calibration())


PLATFORMS = (
    ("SGXv2", _sgxv2_machine),
    ("SGXv1", _sgxv1_machine),
)


def _template(build_mb: float, threads: int) -> JobTemplate:
    return JobTemplate(
        name=f"join-{build_mb:g}mb",
        kind=JobKind.JOIN,
        threads=threads,
        build_bytes=build_mb * 1e6,
        probe_bytes=build_mb * 1e6 * PROBE_FACTOR,
    )


def _measure(
    make_machine, template: JobTemplate, candidate: PlanCandidate, row_cap: int
) -> float:
    """One real in-enclave run of ``candidate``; M rows/s.

    A single run per candidate suffices: join cycle counts are pure
    functions of the logical sizes (the physical sample only carries the
    correctness computation), so repetition seeds cannot move them.
    """
    sim = make_machine()
    build, probe = generate_join_relation_pair(
        template.build_bytes,
        template.probe_bytes,
        seed=DEFAULT_BASE_SEED,
        physical_row_cap=row_cap,
    )
    with sim.context(common.SETTING_SGX_IN, threads=candidate.threads) as ctx:
        result = build_join(candidate).run(ctx, build, probe)
    return common.mrows(result.throughput_rows_per_s(sim.frequency_hz))


def run(
    machine: Optional[SimMachine] = None, *, quick: bool = True
) -> ExperimentReport:
    """Throughput of the three planning policies at each sweep point."""
    del machine  # the sweep builds its own platforms
    config = common.BenchConfig(quick)
    report = ExperimentReport(EXPERIMENT_ID, TITLE, PAPER_REFERENCE)
    for label, make_machine in PLATFORMS:
        proto = make_machine()
        threads = proto.spec.cores_per_socket
        planner = Planner(proto, common.SETTING_SGX_IN, cores=threads)
        native_planner = Planner(proto, common.SETTING_PLAIN, cores=threads)
        matched = 0
        oracle_arms: Dict[float, str] = {}
        for build_mb in BUILD_SIZES_MB:
            template = _template(build_mb, threads)
            measured: Dict[PlanCandidate, float] = {
                candidate: _measure(
                    make_machine, template, candidate, config.row_cap
                )
                for candidate in enumerate_candidates(template)
            }
            oracle = max(measured, key=lambda c: (measured[c], c.label()))
            cost = planner.decide(template).chosen
            native = native_planner.decide(template).chosen
            oracle_arms[build_mb] = oracle.label(threads)
            matched += int(cost == oracle)
            report.add(f"{label} oracle", build_mb, measured[oracle], "M rows/s")
            report.add(f"{label} cost", build_mb, measured[cost], "M rows/s")
            report.add(
                f"{label} native-best", build_mb, measured[native], "M rows/s"
            )
            # The crossover pair: RHO wins small, CrkJoin wins once the
            # working set overruns the EPC (legacy platform only).
            by_label = {c.label(threads): m for c, m in measured.items()}
            report.add(
                f"{label} RHO-unrolled",
                build_mb,
                by_label["RHO-unrolled"],
                "M rows/s",
            )
            report.add(
                f"{label} CrkJoin", build_mb, by_label["CrkJoin"], "M rows/s"
            )
        total = len(BUILD_SIZES_MB)
        report.add(f"{label} match rate", "all", matched / total, "fraction")
        arms = ", ".join(
            f"{mb:g} MB -> {arm}" for mb, arm in oracle_arms.items()
        )
        report.notes.append(
            f"{label}: cost-based picked the oracle arm on {matched}/{total} "
            f"sweep points; oracle arms: {arms}"
        )
    report.notes.append(
        "native-best forces the plain-CPU winner into the enclave (a "
        "SGX-oblivious optimizer); its gap below the oracle on the legacy "
        "platform is the cost of planning without EPC terms"
    )
    return report
