"""Rewrite-mode selection and its ambient (session-scoped) channel.

``--rewrite learned`` asks the serving layer to generate logical rewrite
candidates per TPC-H-style template, prove each bag-identical to the
reference plan, race the survivors through the planner's real-operator
costing, and append per-template winners to the adaptive bandit's arm
set.  Like fault plans, planner modes, cluster topologies, storage
budgets, and backend modes, the choice flows through an explicit ambient
channel (:func:`use_rewrite` / :func:`current_rewrite`) so one flag
reshapes every serving run in a session — and ``--rewrite`` unset (or
``off``) leaves every code path byte-identical to the pre-rewrite build.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError

#: Every selectable rewrite mode, in increasing order of involvement:
#: ``off`` is the pre-rewrite behaviour (and the default), ``prove``
#: generates candidates and runs the exact-equivalence proofs without
#: racing anything, ``race`` additionally prices the proof survivors
#: through the planner's real-operator costing, and ``learned``
#: additionally persists per-template winners into the adaptive bandit's
#: arm set.
REWRITE_MODES = ("off", "prove", "race", "learned")

#: The modes under which candidates are generated and proven at all.
ACTIVE_MODES = ("prove", "race", "learned")


def validate_mode(mode: str) -> str:
    """Return ``mode`` if known, else raise :class:`ConfigurationError`."""
    if mode not in REWRITE_MODES:
        raise ConfigurationError(
            f"unknown rewrite mode {mode!r}; known: {', '.join(REWRITE_MODES)}"
        )
    return mode


_ACTIVE: List[Optional[str]] = [None]


def current_rewrite() -> Optional[str]:
    """The ambient rewrite mode (``None``: rewriting off, the default)."""
    return _ACTIVE[-1]


@contextlib.contextmanager
def use_rewrite(mode: Optional[str]) -> Iterator[Optional[str]]:
    """Install ``mode`` as the ambient rewrite mode for the ``with`` scope.

    ``None`` is a no-op scope (the session default), mirroring
    ``use_storage``/``use_backend_mode``; ``"off"`` is accepted and keys
    identically to ``None`` everywhere (both serve the reference logical
    plans), so pre-rewrite cache entries stay valid for off sessions.
    """
    if mode is not None:
        validate_mode(mode)
    _ACTIVE.append(mode)
    try:
        yield mode
    finally:
        _ACTIVE.pop()
