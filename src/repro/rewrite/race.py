"""Race proven rewrites through the planner's real-operator costing.

The race never times anything at scale: like the physical planner, it
executes each surviving candidate's plan on a pricing stand-in (capped
physical rows, full logical sizes) under a silent tracer, so the
"estimate" *is* a real run's cycle count — including the legacy EPC
paging terms, which is where rewrites that shrink enclave residency win
big on SGXv1-class machines.

Two costing rules distinguish a rewritten plan from the reference arm:

* a rewritten plan loads **only the base tables it reads** (an
  eliminated join's dimension table stops paying enclave residency);
* its physical operator is the template's historical static plan
  (RHO-unrolled at the template's threads), with the rewrite's own
  SET-style knob hints applied on top — so reference vs rewrite is an
  apples-to-apples comparison of logical shape, not a physical-planner
  rematch.

Before pricing, candidates are ordered by an analytic proxy (estimated
intermediate bytes from the cardinality model in
:mod:`repro.planner.stats`, corrected by the Q-error tracker's observed
actuals).  With today's hand-sized candidate sets the proxy prunes
nothing — every survivor is priced — but it is the hook through which
cardinality feedback reaches costing, and the per-decision
``rewrite.qerror`` events show its error shrinking as proofs observe
executed cardinalities.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.cache.keys import query_profile_key
from repro.cache.profile import profile_memo
from repro.core.queries.executor import QueryExecutor
from repro.errors import ConfigurationError
from repro.core.queries.plan import FilterStep, JoinStep, QueryPlan
from repro.machine import SimMachine
from repro.planner.candidates import PlanCandidate, build_join
from repro.planner.costing import (
    PRICING_ROW_CAP,
    PRICING_SEED,
    PRICING_SF_CAP,
    estimate_candidate,
    sizing_cycles,
)
from repro.planner.stats import (
    QErrorTracker,
    estimate_plan_cardinalities,
    tpch_base_rows,
)
from repro.rewrite.candidates import (
    RewriteCandidate,
    base_tables,
    generate_rewrites,
)
from repro.rewrite.config import ACTIVE_MODES, validate_mode
from repro.rewrite.prove import ProofResult, prove_candidate
from repro.tables import generate_tpch
from repro.trace import NullTracer, current_tracer, use_tracer
from repro.trace.breakdown import (
    REWRITE_PROVED,
    REWRITE_QERROR,
    REWRITE_RACE,
    REWRITE_REJECTED,
    REWRITE_WINNER,
)

#: Bytes per integer-coded column value (the executor's representation).
_VALUE_BYTES = 4


@dataclasses.dataclass(frozen=True)
class RewriteEstimate:
    """One proven rewrite's analytical price."""

    candidate: RewriteCandidate
    physical: PlanCandidate
    cycles: float
    seconds: float
    working_set_bytes: int
    proxy_bytes: float = 0.0  # the cardinality model's screening cost

    def label(self) -> str:
        return self.candidate.label()


@dataclasses.dataclass(frozen=True)
class RewriteDecision:
    """Everything one template's rewrite pass decided.

    ``winner`` is set only when a proven rewrite beat the reference's
    priced service time; in ``prove`` mode nothing is raced and both
    ``ranked`` and ``winner`` stay empty.
    """

    template_name: str
    query: str
    mode: str
    proofs: Tuple[ProofResult, ...] = ()
    reference: Optional[object] = None  # CandidateEstimate of the reference
    ranked: Tuple[RewriteEstimate, ...] = ()
    winner: Optional[RewriteEstimate] = None
    q_error_raw: float = 1.0  # analytic estimates vs executed actuals
    q_error_corrected: float = 1.0  # after feedback (1.0 once observed)

    @property
    def proved(self) -> Tuple[ProofResult, ...]:
        return tuple(p for p in self.proofs if p.accepted)

    @property
    def rejected(self) -> Tuple[ProofResult, ...]:
        return tuple(p for p in self.proofs if not p.accepted)

    @property
    def speedup(self) -> float:
        """Reference seconds over winner seconds (1.0 without a winner)."""
        if self.winner is None or self.reference is None:
            return 1.0
        return self.reference.seconds / self.winner.seconds


def static_physical(
    template, rewrite: Optional[RewriteCandidate] = None
) -> PlanCandidate:
    """The physical plan rewrites are priced under: the template's
    historical static choice with the rewrite's knob hints applied."""
    from repro.memory.access import CodeVariant

    algorithm = "RHO"
    fanout = None
    sizing = "static"
    threads = template.threads
    if rewrite is not None and rewrite.hints is not None:
        if rewrite.hints.algorithm is not None:
            algorithm = rewrite.hints.algorithm
        if rewrite.hints.fanout is not None:
            fanout = rewrite.hints.fanout
        if rewrite.hints.sizing is not None:
            sizing = rewrite.hints.sizing
        if rewrite.hints.threads is not None:
            threads = rewrite.hints.threads
    return PlanCandidate(
        algorithm,
        CodeVariant.UNROLLED,
        threads=threads,
        sizing=sizing,
        fanout=fanout,
    )


def proxy_cost_bytes(
    plan: QueryPlan,
    query: str,
    scale_factor: float,
    tracker: Optional[QErrorTracker] = None,
) -> float:
    """The screening proxy: estimated intermediate bytes of ``plan``.

    Sums estimated output bytes over every producing step, using the
    analytic cardinality model corrected by the tracker's observed
    actuals.  Cheap (no execution), and exactly as good as the
    cardinality estimates feeding it — which is the point.
    """
    estimates = estimate_plan_cardinalities(plan, tpch_base_rows(scale_factor))
    total = 0.0
    for step in plan.steps:
        output = getattr(step, "output", None)
        if output is None:
            continue
        rows = estimates[output]
        if tracker is not None:
            rows = tracker.corrected(query, output, rows)
        if isinstance(step, FilterStep):
            width = len(step.keep)
        elif isinstance(step, JoinStep):
            width = max(1, len(step.keep_build) + len(step.keep_probe))
        else:  # pragma: no cover - only producing steps reach here
            width = 1
        total += rows * width * _VALUE_BYTES
    return total


def estimate_rewrite(
    machine: SimMachine,
    setting,
    template,
    rewrite: RewriteCandidate,
    *,
    pricing_seed: int = PRICING_SEED,
) -> RewriteEstimate:
    """Price ``rewrite`` for ``template`` under ``setting``.

    Mirrors :func:`repro.planner.costing.estimate_candidate`'s TPC-H
    branch — same stand-in caps, same silent tracer, same throwaway
    machine, memoized under its own ``rewrite-estimate`` memo kind — but
    executes the *rewritten* plan, loads only its referenced base
    tables, and honours the candidate's pipelining flag.
    """
    physical = static_physical(template, rewrite)
    sim = SimMachine(machine.spec, machine.params)
    memo = profile_memo()
    key = ""
    if memo.enabled:
        key = query_profile_key(
            kind="rewrite-estimate",
            template=template,
            setting=setting,
            candidate={
                "physical": physical,
                "rewrite": rewrite.signature(),
            },
            pricing_seed=pricing_seed,
            row_cap=PRICING_ROW_CAP,
            sf_cap=PRICING_SF_CAP,
            params=machine.params,
            spec=machine.spec,
        )
        hit = memo.get(key)
        if hit is not None:
            return RewriteEstimate(
                candidate=rewrite,
                physical=physical,
                cycles=float(hit["cycles"]),
                seconds=float(hit["seconds"]),
                working_set_bytes=int(hit["working_set_bytes"]),
                proxy_bytes=float(hit["proxy_bytes"]),
            )
    plan = rewrite.plan()
    data = generate_tpch(
        template.scale_factor, seed=pricing_seed, physical_sf_cap=PRICING_SF_CAP
    )
    all_tables = {
        "customer": data.customer,
        "orders": data.orders,
        "lineitem": data.lineitem,
        "part": data.part,
    }
    tables = {name: all_tables[name] for name in base_tables(plan)}
    with use_tracer(NullTracer()):
        with sim.context(setting, threads=physical.threads) as ctx:
            executor = QueryExecutor(
                physical.variant,
                pipelined=rewrite.pipelined,
                join_factory=lambda: build_join(physical),
            )
            cycles = executor.run(ctx, plan, tables).cycles
            working_set = 0
            if ctx.enclave is not None:
                working_set = int(
                    ctx.enclave.config.heap_bytes - ctx.enclave.heap_free_bytes
                )
    sizing = 0.0
    if setting.enclave_mode:
        sizing = sizing_cycles(sim.params, physical, working_set)
    total = cycles + sizing
    proxy = proxy_cost_bytes(plan, template.query, template.scale_factor)
    if memo.enabled:
        memo.put(
            key,
            {
                "cycles": float(total),
                "seconds": float(total / sim.frequency_hz),
                "working_set_bytes": int(working_set),
                "proxy_bytes": float(proxy),
            },
        )
    return RewriteEstimate(
        candidate=rewrite,
        physical=physical,
        cycles=total,
        seconds=total / sim.frequency_hz,
        working_set_bytes=working_set,
        proxy_bytes=proxy,
    )


def plan_rewrites(
    template,
    mode: str,
    machine: Optional[SimMachine] = None,
    setting=None,
    *,
    tracker: Optional[QErrorTracker] = None,
) -> RewriteDecision:
    """Generate, prove, and (mode permitting) race ``template``'s rewrites.

    The subsystem's one entry point: ``prove`` stops after the
    equivalence proofs, ``race``/``learned`` additionally price the
    survivors against the reference arm.  Emits ``rewrite.*`` trace
    events as it goes — callers only reach this function when rewriting
    is active, so an off session records no rewrite bytes at all.
    """
    validate_mode(mode)
    if mode not in ACTIVE_MODES:
        raise ConfigurationError(
            "plan_rewrites must not be called with mode 'off'"
        )
    tracer = current_tracer()
    candidates = generate_rewrites(template)
    if not candidates:
        return RewriteDecision(
            template_name=template.name, query="", mode=mode
        )
    query = template.query
    if tracker is None:
        tracker = QErrorTracker()
    reference_plan_cards = estimate_plan_cardinalities(
        _reference_plan(query), tpch_base_rows(template.scale_factor)
    )
    tracker.register(query, reference_plan_cards)

    proofs = []
    for candidate in candidates:
        proof = prove_candidate(template, candidate)
        proofs.append(proof)
        if tracer.enabled:
            if proof.accepted:
                tracer.event(
                    REWRITE_PROVED,
                    template=template.name,
                    query=query,
                    rewrite=candidate.name,
                    kind=candidate.kind,
                    digest=proof.digest[:16],
                    rows=proof.rows,
                )
            else:
                tracer.event(
                    REWRITE_REJECTED,
                    template=template.name,
                    query=query,
                    rewrite=candidate.name,
                    kind=candidate.kind,
                    reason=proof.reason,
                )
    # Every proof run executed the reference plan for real: feed its
    # per-step cardinalities back into the estimate tracker and log the
    # decision's Q-error before/after the correction.
    actuals = next(p.actual_cardinalities for p in proofs)
    raw_worst = _raw_worst(tracker, query, actuals)
    tracker.observe(query, actuals)
    corrected_worst = tracker.corrected_worst(query)
    if tracer.enabled:
        tracer.event(
            REWRITE_QERROR,
            template=template.name,
            query=query,
            max_q_error_raw=raw_worst,
            max_q_error_corrected=corrected_worst,
            steps=len(actuals),
        )
    if mode == "prove":
        return RewriteDecision(
            template_name=template.name,
            query=query,
            mode=mode,
            proofs=tuple(proofs),
            q_error_raw=raw_worst,
            q_error_corrected=corrected_worst,
        )

    if machine is None:
        machine = SimMachine()
    reference_physical = static_physical(template)
    reference = estimate_candidate(
        machine, setting, template, reference_physical
    )
    survivors = [p.candidate for p in proofs if p.accepted]
    # Screening order: the cardinality proxy, corrected by feedback.
    survivors.sort(
        key=lambda c: (
            proxy_cost_bytes(
                c.plan(), query, template.scale_factor, tracker
            ),
            c.name,
        )
    )
    estimates = []
    for candidate in survivors:
        estimate = estimate_rewrite(machine, setting, template, candidate)
        estimates.append(estimate)
        if tracer.enabled:
            tracer.event(
                REWRITE_RACE,
                template=template.name,
                query=query,
                rewrite=candidate.name,
                seconds=estimate.seconds,
                working_set_bytes=estimate.working_set_bytes,
                reference_seconds=reference.seconds,
            )
    ranked = tuple(
        sorted(estimates, key=lambda e: (e.seconds, e.candidate.name))
    )
    winner = None
    if ranked and ranked[0].seconds < reference.seconds:
        winner = ranked[0]
        if tracer.enabled:
            tracer.event(
                REWRITE_WINNER,
                template=template.name,
                query=query,
                rewrite=winner.candidate.name,
                kind=winner.candidate.kind,
                seconds=winner.seconds,
                reference_seconds=reference.seconds,
                speedup=reference.seconds / winner.seconds,
            )
    return RewriteDecision(
        template_name=template.name,
        query=query,
        mode=mode,
        proofs=tuple(proofs),
        reference=reference,
        ranked=ranked,
        winner=winner,
        q_error_raw=raw_worst,
        q_error_corrected=corrected_worst,
    )


def _reference_plan(query: str) -> QueryPlan:
    from repro.core.queries.tpch_queries import TPCH_QUERIES

    return TPCH_QUERIES[query]()


def _raw_worst(
    tracker: QErrorTracker, query: str, actuals
) -> float:
    """Max analytic Q-error for ``query`` given fresh ``actuals``,
    without mutating the tracker (the 'before' of the decision log)."""
    from repro.planner.stats import q_error

    worst = 1.0
    for step, actual in actuals:
        estimate = tracker.estimates.get((query, step))
        if estimate is None:
            continue
        worst = max(worst, q_error(estimate, actual))
    return worst
