"""Exact equivalence proofs: execute rewrites for real, compare bags.

A rewrite candidate is admitted to the race only after this module has
*executed* both the reference plan and the candidate plan — through the
real :class:`~repro.core.queries.executor.QueryExecutor`, over the same
physical stand-in rows the catalog's pricing runs use — and shown their
witness bags identical under the canonical-digest machinery of
:mod:`repro.backends.equivalence` (quantized values, row- and
column-order insensitivity, duplicates preserved).  Nothing is assumed:
a candidate whose bag differs, or whose plan fails to execute at all, is
rejected with the first differing row (or the error) as the reason.

The proof runs the *witness-widened* plan twins (see
:mod:`repro.rewrite.candidates`): same filters and joins, wider ``keep``
lists so the final table identifies surviving rows across differently
shaped plans.  As a harness self-check, the executed reference count is
also compared against the plain-numpy ground truth of
:func:`~repro.core.queries.tpch_queries.reference_count`.

Proof outcomes are pure functions of (query, candidate, seed, caps) and
are memoized in-process; trace events are the caller's business (see
:func:`repro.rewrite.race.plan_rewrites`), so memoization never changes
what a traced run records.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.backends.equivalence import assert_equivalent
from repro.core.queries.executor import QueryExecutor
from repro.core.queries.plan import QueryPlan
from repro.core.queries.tpch_queries import reference_count
from repro.enclave.runtime import ExecutionSetting
from repro.errors import EquivalenceError, ReproError
from repro.machine import SimMachine
from repro.planner.candidates import PlanCandidate, build_join
from repro.rewrite.candidates import (
    RewriteCandidate,
    base_tables,
    reference_proof_plan,
)
from repro.tables import generate_tpch
from repro.tables.table import Table
from repro.trace import NullTracer, use_tracer

#: The proof stand-in's seed and physical caps.  Same seed as every
#: pricing stand-in (proofs are part of the plan, not of the measured
#: run); the caps match the catalog's *quick* fidelity — a much larger
#: sample than the pricing cap, because a proof wants collisions,
#: duplicates, and all three Q19 disjuncts populated.
PROOF_SEED = 13
PROOF_SF_CAP = 0.01


@dataclasses.dataclass(frozen=True)
class ProofResult:
    """The outcome of one candidate's equivalence proof."""

    candidate: RewriteCandidate
    accepted: bool
    digest: str = ""  # shared canonical bag digest when accepted
    reason: str = ""  # why the candidate was rejected otherwise
    rows: int = 0  # witness rows compared (physical)
    count: int = 0  # the candidate plan's executed count(*)
    #: Executed output cardinalities (logical rows) per reference-plan
    #: step, from the reference proof run — the Q-error machinery's
    #: ground truth.
    actual_cardinalities: Tuple[Tuple[str, float], ...] = ()


_MEMO: Dict[Tuple[str, str, float, float], ProofResult] = {}


def _witness_rows(namespace: Dict[str, Table], plan: QueryPlan) -> List[tuple]:
    """The final pre-count table's rows, as plain tuples."""
    final = namespace[plan.steps[-1].source]
    arrays = [final[name] for name in final.column_names]
    return list(zip(*arrays)) if arrays else []


def _run_proof_plan(
    plan: QueryPlan,
    tables: Dict[str, Table],
    candidate: RewriteCandidate,
    threads: int,
) -> Tuple[List[tuple], int, Dict[str, Table]]:
    """Execute ``plan`` for real on the plain CPU; witness bag + count.

    Proofs are about results, not cycles: the plain-CPU setting and
    the silent tracer keep them fast and invisible to any enclave or
    trace accounting.
    """
    sim = SimMachine()
    used = {name: tables[name] for name in base_tables(plan)}
    namespace: Dict[str, Table] = {}
    physical = static_candidate_for(candidate, threads)
    executor = QueryExecutor(
        physical.variant,
        pipelined=candidate.pipelined,
        join_factory=lambda: build_join(physical),
    )
    with use_tracer(NullTracer()):
        with sim.context(ExecutionSetting.plain_cpu(), threads=threads) as ctx:
            result = executor.run(ctx, plan, used, namespace_out=namespace)
    return _witness_rows(namespace, plan), result.count, namespace


def static_candidate_for(candidate: RewriteCandidate, threads: int):
    """The physical plan the proof executes under.

    The proof honours the rewrite's own knob hints (a hinted fan-out or
    join algorithm must be proven *at* that hint), and otherwise runs
    the historical static physical plan — the proof is about the logical
    shape, and any admissible physical plan computes the same bag.
    """
    from repro.memory.access import CodeVariant

    algorithm = "RHO"
    fanout = None
    if candidate.hints is not None:
        if candidate.hints.algorithm is not None:
            algorithm = candidate.hints.algorithm
        if candidate.hints.fanout is not None:
            fanout = candidate.hints.fanout
    return PlanCandidate(
        algorithm, CodeVariant.UNROLLED, threads=threads, fanout=fanout
    )


def prove_candidate(
    template, candidate: RewriteCandidate, *, sf_cap: float = PROOF_SF_CAP
) -> ProofResult:
    """Prove (or refute) ``candidate`` against ``template``'s reference.

    Deterministic and silent; memoized on (query, candidate, scale,
    caps) so serving runs that plan the same template repeatedly pay for
    one proof execution.
    """
    key = (
        template.query,
        candidate.name,
        float(template.scale_factor),
        float(sf_cap),
    )
    hit = _MEMO.get(key)
    if hit is not None:
        return hit
    data = generate_tpch(
        template.scale_factor, seed=PROOF_SEED, physical_sf_cap=sf_cap
    )
    tables = {
        "customer": data.customer,
        "orders": data.orders,
        "lineitem": data.lineitem,
        "part": data.part,
    }
    threads = template.threads
    reference_plan = reference_proof_plan(template.query)
    ref_rows, ref_count, ref_namespace = _run_proof_plan(
        reference_plan, tables, _reference_stub(template.query), threads
    )
    truth = reference_count(data, template.query)
    if ref_count != truth:
        raise EquivalenceError(
            f"{template.query}: witness-widened reference counted "
            f"{ref_count}, plain-numpy ground truth says {truth} — the "
            "proof harness itself is broken"
        )
    actuals = tuple(
        (name, float(table.logical_rows))
        for name, table in ref_namespace.items()
        if name not in tables
    )
    try:
        cand_rows, cand_count, _ = _run_proof_plan(
            candidate.proof_plan(), tables, candidate, threads
        )
        digest = assert_equivalent(
            {"reference": ref_rows, candidate.name: cand_rows},
            context=f"{template.query} rewrite {candidate.name!r}",
        )
    except ReproError as error:
        result = ProofResult(
            candidate=candidate,
            accepted=False,
            reason=str(error),
            rows=len(ref_rows),
            actual_cardinalities=actuals,
        )
        _MEMO[key] = result
        return result
    result = ProofResult(
        candidate=candidate,
        accepted=True,
        digest=digest,
        rows=len(ref_rows),
        count=cand_count,
        actual_cardinalities=actuals,
    )
    _MEMO[key] = result
    return result


def _reference_stub(query: str) -> RewriteCandidate:
    """A no-op candidate shell so the reference runs through the same
    executor wiring (static physical plan, materializing scheme)."""
    return RewriteCandidate(
        name="reference",
        query=query,
        kind="reference",
        description="the template's own logical plan",
        plan=lambda: reference_proof_plan(query),
        proof_plan=lambda: reference_proof_plan(query),
    )


def actual_cardinalities(template) -> Tuple[Tuple[str, float], ...]:
    """Executed per-step output cardinalities of ``template``'s plan.

    Runs (or reuses) the reference proof execution; the returned pairs
    are (step output name, logical rows) — the ground truth the Q-error
    tracker compares estimates against.
    """
    stub = _reference_stub(template.query)
    result = prove_candidate(template, stub)
    return result.actual_cardinalities
