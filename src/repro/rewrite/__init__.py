"""Logical query rewriting: candidate search, exact proofs, priced races.

The planner below this package chooses *physical* plans (operator,
variant, threads, sizing) for a fixed logical shape.  This package adds
the missing logical dimension on top: per TPC-H template it generates
rewrite candidates (join reorders, redundant-join elimination standing in
for decorrelation, predicate pushdown, pipeline fusion, knob hints),
**proves** each one bag-identical to the reference plan by executing both
through the real executor and comparing canonical digests
(:mod:`repro.backends.equivalence` — exact, never sampled), and races
only the survivors through the planner's real-operator costing.  Proof
failures are never raced; they are traced as ``rewrite.rejected``.

Cardinality Q-error closes the loop: proofs yield executed per-step
cardinalities, a :class:`~repro.planner.stats.QErrorTracker` replaces
analytic estimates with observations, and the race's screening order
(and ``explain``'s ranked-rewrites section) sharpen as templates get
observed — the ``rewrite.qerror`` events show the worst error falling.

Everything is opt-in via the ambient channel (:func:`use_rewrite`) or
the ``--rewrite {off,prove,race,learned}`` CLI flag; with the channel
unset the serving path is byte-identical to the pre-rewrite repo.
"""

from repro.rewrite.candidates import (
    REWRITE_KINDS,
    RewriteCandidate,
    base_tables,
    generate_rewrites,
    reference_proof_plan,
)
from repro.rewrite.config import (
    ACTIVE_MODES,
    REWRITE_MODES,
    current_rewrite,
    use_rewrite,
    validate_mode,
)
from repro.rewrite.prove import (
    PROOF_SEED,
    PROOF_SF_CAP,
    ProofResult,
    actual_cardinalities,
    prove_candidate,
)
from repro.rewrite.race import (
    RewriteDecision,
    RewriteEstimate,
    estimate_rewrite,
    plan_rewrites,
    proxy_cost_bytes,
    static_physical,
)

__all__ = [
    "ACTIVE_MODES",
    "PROOF_SEED",
    "PROOF_SF_CAP",
    "ProofResult",
    "REWRITE_KINDS",
    "REWRITE_MODES",
    "RewriteCandidate",
    "RewriteDecision",
    "RewriteEstimate",
    "actual_cardinalities",
    "base_tables",
    "current_rewrite",
    "estimate_rewrite",
    "generate_rewrites",
    "plan_rewrites",
    "prove_candidate",
    "proxy_cost_bytes",
    "reference_proof_plan",
    "static_physical",
    "use_rewrite",
    "validate_mode",
]
