"""Logical rewrite candidates for the TPC-H-style templates.

The planner (:mod:`repro.planner`) enumerates *physical* candidates —
join algorithm, variant, threads, sizing, fan-out — for a fixed logical
plan.  This module goes one level up: per TPC-H template it proposes
alternative *logical* plans (join reordering, redundant-join
elimination, predicate pushdown, materialization-strategy swaps, and
SET-style knob hints mapped onto :class:`~repro.planner.PlanHints`).

A candidate is a *claim*, not a fact: nothing here asserts equivalence.
Every candidate carries a witness-widened ``proof_plan`` twin whose
final table materializes enough columns to identify the surviving rows;
:mod:`repro.rewrite.prove` executes reference and candidate proof plans
for real and compares canonical result bags.  The generator may propose
plausible-but-unsound rewrites (``build-on-orders`` below swaps a join
onto a duplicate-key build side, silently collapsing multiplicity —
a classic optimizer bug); the proof, not the generator, is the
correctness boundary.

The plan language has no correlated subqueries (the paper's Sec. 6
queries are filter/join/count pipelines), so decorrelation proper has no
material here; redundant-join elimination — the simplification
decorrelation usually enables — stands in for that family.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.core.queries.plan import CountStep, FilterStep, JoinStep, QueryPlan
from repro.core.queries.tpch_queries import (
    TPCH_QUERIES,
    q3_plan,
    q10_plan,
    q12_plan,
    q19_plan,
)
from repro.planner.candidates import PlanHints

#: Kinds of logical transformation the generator proposes.
REWRITE_KINDS = ("reorder", "eliminate", "pushdown", "pipeline", "knob")


@dataclasses.dataclass(frozen=True)
class RewriteCandidate:
    """One proposed logical rewrite of a TPC-H template's plan.

    ``plan`` builds the plan the candidate would actually serve (and be
    priced with); ``proof_plan`` builds the witness-widened twin the
    equivalence proof executes (same filters and joins, wider ``keep``
    lists so the final table identifies the surviving rows).
    ``pipelined`` switches the executor to its fused pipeline
    (materialization-strategy swap); ``hints`` pins physical knobs for
    the racing stage (SET-style hints onto :class:`PlanHints`).
    """

    name: str
    query: str
    kind: str
    description: str
    plan: Callable[[], QueryPlan]
    proof_plan: Callable[[], QueryPlan]
    pipelined: bool = False
    hints: Optional[PlanHints] = None

    def signature(self) -> Dict[str, object]:
        """Content identity for memo keys: the plan's rendered shape.

        Hashing the rendered step list (not the factory object) keeps
        memo entries stable across processes and sensitive to any edit
        of the rewritten plan.
        """
        return {
            "name": self.name,
            "query": self.query,
            "kind": self.kind,
            "plan": list(self.plan().describe()),
            "pipelined": bool(self.pipelined),
            "hints": self.hints,
        }

    def label(self) -> str:
        """The arm label a learned winner serves under (``rw:`` prefixed
        so it can never collide with a physical candidate's label)."""
        return f"rw:{self.query.lower()}/{self.name}"


def _replace_step(plan: QueryPlan, output: str, **changes) -> QueryPlan:
    """A copy of ``plan`` with the step producing ``output`` replaced."""
    steps = tuple(
        dataclasses.replace(step, **changes)
        if getattr(step, "output", None) == output
        else step
        for step in plan.steps
    )
    return QueryPlan(plan.name, steps)


def base_tables(plan: QueryPlan) -> Tuple[str, ...]:
    """The base tables ``plan`` actually reads, in first-use order.

    An eliminated join's table drops out of this list — which is the
    point: a plan that never touches ``customer`` should not pay its
    enclave residency either.
    """
    produced = set()
    used = []
    for step in plan.steps:
        sources = ()
        if isinstance(step, FilterStep):
            sources = (step.source,)
        elif isinstance(step, JoinStep):
            sources = (step.build, step.probe)
        elif isinstance(step, CountStep):
            sources = (step.source,)
        for source in sources:
            if source not in produced and source not in used:
                used.append(source)
        output = getattr(step, "output", None)
        if output is not None:
            produced.add(output)
    return tuple(used)


# ---------------------------------------------------------------------------
# Witness-widened reference proof plans.  The final table of every proof
# plan materializes the query's witness columns, so two equivalent plans
# produce literally comparable bags (the reference plans' final joins
# keep nothing and fall back to probe row-ids, which are positions in
# *that plan's* probe table — meaningless across differently shaped
# plans).


def _q3_reference_proof() -> QueryPlan:
    return _replace_step(q3_plan(), "col", keep_probe=("l_orderkey",))


def _q10_reference_proof() -> QueryPlan:
    return _replace_step(q10_plan(), "col", keep_probe=("l_orderkey",))


def _q12_reference_proof() -> QueryPlan:
    return _replace_step(q12_plan(), "ol", keep_probe=("l_orderkey",))


def _q19_reference_proof() -> QueryPlan:
    plan = _replace_step(
        q19_plan(), "pl", keep_probe=("l_quantity", "l_partkey")
    )
    return _replace_step(plan, "pl_f", keep=("l_partkey", "l_quantity"))


_REFERENCE_PROOFS: Dict[str, Callable[[], QueryPlan]] = {
    "Q3": _q3_reference_proof,
    "Q10": _q10_reference_proof,
    "Q12": _q12_reference_proof,
    "Q19": _q19_reference_proof,
}


def reference_proof_plan(query: str) -> QueryPlan:
    """The witness-widened twin of ``query``'s reference plan."""
    return _REFERENCE_PROOFS[query]()


# ---------------------------------------------------------------------------
# Q3: customer ⋈ orders ⋈ lineitem.  The reference joins customer_f with
# orders_f first; reordering joins orders_f with the (much larger)
# filtered lineitem first, carrying o_custkey up to a final join against
# the filtered customers.


def _q3_reorder(proof: bool = False) -> QueryPlan:
    base = q3_plan()
    filters = base.steps[:3]
    first_keep_probe = ("l_orderkey",) if proof else ()
    final_keep_probe = ("l_orderkey",) if proof else ()
    return QueryPlan(
        "Q3",
        (
            *filters,
            JoinStep(
                build="orders_f",
                probe="lineitem_f",
                build_key="o_orderkey",
                probe_key="l_orderkey",
                output="ol",
                keep_build=("o_custkey",),
                keep_probe=first_keep_probe,
            ),
            JoinStep(
                build="customer_f",
                probe="ol",
                build_key="c_custkey",
                probe_key="o_custkey",
                output="col",
                keep_probe=final_keep_probe,
            ),
            CountStep(source="col"),
        ),
    )


# ---------------------------------------------------------------------------
# Q10: the reference builds the first join on the *unfiltered* customer
# table, yet the count never reads a customer column and every order has
# exactly one customer (FK integrity) — the join filters nothing, so it
# can be eliminated outright.


def _q10_eliminate(proof: bool = False) -> QueryPlan:
    base = q10_plan()
    filters = base.steps[:2]
    keep_probe = ("l_orderkey",) if proof else ()
    return QueryPlan(
        "Q10",
        (
            *filters,
            JoinStep(
                build="orders_f",
                probe="lineitem_f",
                build_key="o_orderkey",
                probe_key="l_orderkey",
                output="ol",
                keep_probe=keep_probe,
            ),
            CountStep(source="ol"),
        ),
    )


def _q10_build_swap(proof: bool = False) -> QueryPlan:
    """Unsound on purpose: build the first join on the smaller orders_f.

    Plausible — optimizers build on the smaller side — but orders_f is
    keyed by ``o_custkey``, which is *not* unique (a customer places
    many orders), and a build side with duplicate keys collapses the
    join's multiplicity.  The equivalence proof must reject this.
    """
    base = q10_plan()
    filters = base.steps[:2]
    keep_probe = ("l_orderkey",) if proof else ()
    return QueryPlan(
        "Q10",
        (
            *filters,
            JoinStep(
                build="orders_f",
                probe="customer",
                build_key="o_custkey",
                probe_key="c_custkey",
                output="co",
                keep_build=("o_orderkey",),
            ),
            JoinStep(
                build="co",
                probe="lineitem_f",
                build_key="o_orderkey",
                probe_key="l_orderkey",
                output="col",
                keep_probe=keep_probe,
            ),
            CountStep(source="col"),
        ),
    )


# ---------------------------------------------------------------------------
# Q19: the three brand/container/quantity disjuncts all bound
# ``l_quantity`` inside [1, 30]; the union bound pushes below the join
# (a superset filter — the exact disjuncts still run after the join), so
# the part ⋈ lineitem join probes ~60 % of the rows.


def _q19_pushdown(proof: bool = False) -> QueryPlan:
    base = _q19_reference_proof() if proof else q19_plan()
    lineitem_f = base.steps[0]
    assert isinstance(lineitem_f, FilterStep)
    original = lineitem_f.predicate

    def pushed(t):
        return original(t) & (t["l_quantity"] >= 1) & (t["l_quantity"] <= 30)

    return _replace_step(
        base,
        "lineitem_f",
        predicate=pushed,
        scan_columns=(*lineitem_f.scan_columns, "l_quantity"),
        description=(
            lineitem_f.description + ", l_quantity in 1..30 (pushed bound)"
        ),
    )


# ---------------------------------------------------------------------------
# Generation.


def _pipeline_candidate(query: str) -> RewriteCandidate:
    return RewriteCandidate(
        name="fuse-pipeline",
        query=query,
        kind="pipeline",
        description=(
            "fuse the materializing operator chain into a pipeline "
            "(intermediates skip their write/read round-trip)"
        ),
        plan=TPCH_QUERIES[query],
        proof_plan=_REFERENCE_PROOFS[query],
        pipelined=True,
    )


def _partition_swap_candidate(query: str, algorithm: str) -> RewriteCandidate:
    """Swap the partition strategy of every join in ``query``'s plan.

    The static physical plan is the paper's Sec. 6 radix join, whose two
    out-of-place partition passes stream both <key, row-id> pair tables
    multiple times — ruinous on a legacy-EPC platform once the probe
    pairs overflow the EPC.  This family hints a non-partitioning (or
    enclave-native) join instead; the proof still executes the hinted
    operator for real, so an algorithm that computed a different bag
    would be rejected, not raced.
    """
    return RewriteCandidate(
        name=f"swap-join-{algorithm.lower()}",
        query=query,
        kind="knob",
        description=(
            f"SET-style hint: run every join as {algorithm} instead of "
            "the static radix join (skips the partition passes that "
            "stream beyond-EPC pair tables)"
        ),
        plan=TPCH_QUERIES[query],
        proof_plan=_REFERENCE_PROOFS[query],
        hints=PlanHints(algorithm=algorithm),
    )


def _knob_candidate(query: str, fanout: int) -> RewriteCandidate:
    return RewriteCandidate(
        name=f"knob-fanout{fanout}",
        query=query,
        kind="knob",
        description=(
            f"SET-style hint: pin the partitioned joins' radix fan-out "
            f"to {fanout} bits"
        ),
        plan=TPCH_QUERIES[query],
        proof_plan=_REFERENCE_PROOFS[query],
        hints=PlanHints(fanout=fanout),
    )


def generate_rewrites(template) -> Tuple[RewriteCandidate, ...]:
    """All rewrite candidates for ``template`` (``()`` off TPC-H).

    Join and scan templates have no logical plan to rewrite — their
    physical space is already the planner's; rewriting operates strictly
    one level above it, on the TPC-H-style plans.
    """
    if template.kind.value != "tpch" or template.query not in TPCH_QUERIES:
        return ()
    query = template.query
    candidates = []
    if query == "Q3":
        candidates.append(
            RewriteCandidate(
                name="reorder-lineitem-first",
                query=query,
                kind="reorder",
                description=(
                    "join orders_f with lineitem_f first, carry o_custkey "
                    "up to a final join against the filtered customers"
                ),
                plan=_q3_reorder,
                proof_plan=lambda: _q3_reorder(proof=True),
            )
        )
        candidates.append(_knob_candidate(query, 6))
    elif query == "Q10":
        candidates.append(
            RewriteCandidate(
                name="drop-customer-join",
                query=query,
                kind="eliminate",
                description=(
                    "eliminate the key-preserving customer join: the count "
                    "reads no customer column and FK integrity guarantees "
                    "one match per order"
                ),
                plan=_q10_eliminate,
                proof_plan=lambda: _q10_eliminate(proof=True),
            )
        )
        candidates.append(
            RewriteCandidate(
                name="build-on-orders",
                query=query,
                kind="reorder",
                description=(
                    "build the first join on the smaller orders_f side "
                    "(unsound: o_custkey is not unique there)"
                ),
                plan=_q10_build_swap,
                proof_plan=lambda: _q10_build_swap(proof=True),
            )
        )
    elif query == "Q12":
        candidates.append(_knob_candidate(query, 6))
    elif query == "Q19":
        candidates.append(
            RewriteCandidate(
                name="push-quantity-bound",
                query=query,
                kind="pushdown",
                description=(
                    "push the disjuncts' union quantity bound [1, 30] "
                    "below the part join (superset filter; exact "
                    "disjuncts still run after the join)"
                ),
                plan=_q19_pushdown,
                proof_plan=lambda: _q19_pushdown(proof=True),
            )
        )
    for algorithm in ("PHT", "CrkJoin"):
        candidates.append(_partition_swap_candidate(query, algorithm))
    candidates.append(_pipeline_candidate(query))
    return tuple(candidates)
