"""SGX-aware cost-based query planning with online adaptive refinement.

The figure experiments and the serving layer historically hardcoded one
physical operator per job (``RadixJoin`` everywhere).  The paper's central
practical lesson is that this is wrong: the best join is *not* the same
inside and outside the enclave (CrkJoin wins on SGXv1, RHO wins on SGXv2,
and the crossover moves with EPC pressure — Fig. 3/8, ext06).  This
package turns the repo from "replays fixed configurations" into "chooses
configurations":

* :mod:`repro.planner.stats` — logical table/column statistics and
  cardinality estimates derived from a job template (no data touched);
* :mod:`repro.planner.candidates` — enumeration of candidate physical
  plans: join algorithm {PHT, RHO, RHO-unrolled, MWAY, INL, CrkJoin},
  code variant, thread count, static vs EDMM enclave sizing, and
  partitioning fan-out, optionally pinned by a template's ``plan_hints``;
* :mod:`repro.planner.costing` — prices each candidate analytically
  through :class:`~repro.memory.cost_model.MemoryCostModel` under the
  active :class:`~repro.hardware.spec.HardwareSpec` without executing it
  on real data;
* :mod:`repro.planner.choose` — selects per query under the current EPC
  residency and renders ``explain()`` reports;
* :mod:`repro.planner.adaptive` — seeded epsilon-greedy refinement over
  the top-k candidates from observed serving latencies, with every draw
  taken from decision identity (like :mod:`repro.faults`) so adaptive
  runs stay byte-identical across serial / ``--jobs N`` / cached replay.

Planner *modes* select how much of this machinery a run uses:

* ``static`` (the default) — today's exact hardcoded choices; outputs are
  byte-identical to pre-planner builds;
* ``cost`` — the analytical best candidate per template, fixed for the
  whole run;
* ``adaptive`` — serving runs refine the top-k candidates online;
* ``oracle`` — an experiment-only upper bound that picks per dispatch
  with knowledge of the momentary EPC headroom.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.errors import ConfigurationError
from repro.planner.adaptive import (
    ArmCost,
    CostSelector,
    EpsilonGreedySelector,
    OracleSelector,
    PlanSelector,
)
from repro.planner.candidates import (
    JOIN_ALGORITHMS,
    PlanCandidate,
    PlanHints,
    build_join,
    enumerate_candidates,
    static_candidate,
)
from repro.planner.choose import PlanDecision, Planner
from repro.planner.costing import CandidateEstimate, estimate_candidate
from repro.planner.stats import WorkStats

#: The planner modes the CLI exposes.  ``oracle`` additionally exists for
#: experiments (wl05's upper-bound arm) but is not a CLI mode: it requires
#: momentary scheduler state no production planner can see.
PLANNER_MODES = ("static", "cost", "adaptive")
ALL_MODES = PLANNER_MODES + ("oracle",)

#: The default mode: preserve today's exact operator choices.
DEFAULT_MODE = "static"


def validate_mode(mode: str, *, allow_oracle: bool = True) -> str:
    """Return ``mode`` if known, raise :class:`ConfigurationError` if not."""
    known = ALL_MODES if allow_oracle else PLANNER_MODES
    if mode not in known:
        raise ConfigurationError(
            f"unknown planner mode {mode!r}; known: {', '.join(known)}"
        )
    return mode


# -- the session-level mode (the CLI's --planner channel) ------------------

_current_mode: str = DEFAULT_MODE


def current_planner_mode() -> str:
    """The session-level planner mode (``static`` unless installed)."""
    return _current_mode


@contextlib.contextmanager
def use_planner_mode(mode: Optional[str]) -> Iterator[str]:
    """Install ``mode`` as the session planner mode for the ``with`` scope.

    Serving runs whose :class:`~repro.workload.engine.WorkloadConfig`
    leaves ``planner=None`` pick this mode up; a config with an explicit
    mode (wl05 pins all of its arms) is never overridden.  ``None`` keeps
    the current mode (a nested no-op scope).
    """
    global _current_mode
    previous = _current_mode
    if mode is not None:
        _current_mode = validate_mode(mode)
    try:
        yield _current_mode
    finally:
        _current_mode = previous


__all__ = [
    "ALL_MODES",
    "ArmCost",
    "CandidateEstimate",
    "CostSelector",
    "DEFAULT_MODE",
    "EpsilonGreedySelector",
    "JOIN_ALGORITHMS",
    "OracleSelector",
    "PLANNER_MODES",
    "PlanCandidate",
    "PlanDecision",
    "PlanHints",
    "PlanSelector",
    "Planner",
    "WorkStats",
    "build_join",
    "current_planner_mode",
    "enumerate_candidates",
    "estimate_candidate",
    "static_candidate",
    "use_planner_mode",
    "validate_mode",
]
