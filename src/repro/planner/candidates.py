"""Candidate physical plans: what the planner may choose between.

A :class:`PlanCandidate` fixes every physical decision one query template
leaves open: the join algorithm (the paper's five, with RHO in both code
variants — Sec. 4's headline result is that their ranking flips between
native, SGXv2, and SGXv1 execution), the code variant, the thread count,
the enclave sizing strategy (statically committed heap vs EDMM growth,
Fig. 11), and the radix partitioning fan-out.

Templates may pin any subset of these via :class:`PlanHints` (wl05's
"static-native" arm forces the plan a SGX-oblivious optimizer would pick);
:func:`enumerate_candidates` respects hints by filtering the space, and
:func:`static_candidate` reproduces the repo's historical hardcoded choice
exactly (``RadixJoin`` at the catalog's variant), which is what keeps
``--planner static`` byte-identical to pre-planner builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.joins import (
    CrkJoin,
    IndexNestedLoopJoin,
    JoinAlgorithm,
    ParallelHashJoin,
    RadixJoin,
    SortMergeJoin,
)
from repro.enclave.sync import LockKind
from repro.errors import ConfigurationError
from repro.memory.access import CodeVariant

#: Join algorithm name -> class, in the paper's Fig. 3 order.
JOIN_ALGORITHMS = {
    "CrkJoin": CrkJoin,
    "PHT": ParallelHashJoin,
    "RHO": RadixJoin,
    "MWAY": SortMergeJoin,
    "INL": IndexNestedLoopJoin,
}

#: Enclave sizing strategies (Fig. 11): commit the heap up front and touch
#: pages at init, or grow on demand through EDMM (~47x more cycles/page).
SIZINGS = ("static", "edmm")

#: The scan pseudo-algorithm (scans have one kernel, always SIMD).
SCAN_ALGORITHM = "SCAN"


@dataclass(frozen=True)
class PlanHints:
    """Optional pins a template puts on the candidate space.

    Every field left ``None`` stays a free dimension; a set field removes
    all candidates that disagree.  Hints pin, they do not invent: hinting
    an unknown algorithm raises at template construction.
    """

    algorithm: Optional[str] = None
    variant: Optional[CodeVariant] = None
    threads: Optional[int] = None
    sizing: Optional[str] = None
    fanout: Optional[int] = None
    spill: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.algorithm is not None and self.algorithm not in (
            *JOIN_ALGORITHMS,
            SCAN_ALGORITHM,
        ):
            known = ", ".join((*JOIN_ALGORITHMS, SCAN_ALGORITHM))
            raise ConfigurationError(
                f"unknown hinted algorithm {self.algorithm!r}; known: {known}"
            )
        if self.sizing is not None and self.sizing not in SIZINGS:
            raise ConfigurationError(
                f"unknown hinted sizing {self.sizing!r}; known: {SIZINGS}"
            )
        if self.threads is not None and self.threads < 1:
            raise ConfigurationError("hinted threads must be >= 1")

    def admits(self, candidate: "PlanCandidate") -> bool:
        return (
            (self.algorithm is None or candidate.algorithm == self.algorithm)
            and (self.variant is None or candidate.variant is self.variant)
            and (self.threads is None or candidate.threads == self.threads)
            and (self.sizing is None or candidate.sizing == self.sizing)
            and (self.fanout is None or candidate.fanout == self.fanout)
            and (self.spill is None or candidate.spill == self.spill)
        )


@dataclass(frozen=True)
class PlanCandidate:
    """One fully decided physical plan for a template."""

    algorithm: str
    variant: CodeVariant = CodeVariant.NAIVE
    threads: int = 1
    sizing: str = "static"
    fanout: Optional[int] = None  # None: the algorithm's auto fan-out
    #: Serve through the sealed spill path (grace-partitioned execution
    #: against a storage budget) instead of holding the working set in
    #: EPC.  Only enumerated when a ``--storage`` budget is in play.
    spill: bool = False

    def __post_init__(self) -> None:
        if self.algorithm not in JOIN_ALGORITHMS and self.algorithm not in (
            SCAN_ALGORITHM,
        ):
            known = ", ".join((*JOIN_ALGORITHMS, SCAN_ALGORITHM))
            raise ConfigurationError(
                f"unknown plan algorithm {self.algorithm!r}; known: {known}"
            )
        if self.sizing not in SIZINGS:
            raise ConfigurationError(
                f"unknown sizing {self.sizing!r}; known: {SIZINGS}"
            )
        if self.threads < 1:
            raise ConfigurationError("a plan candidate needs >= 1 thread")

    def label(self, default_threads: Optional[int] = None) -> str:
        """Short arm name for traces and reports, e.g. ``RHO-unrolled``.

        Non-default dimensions append suffixes (``@8t``, ``+edmm``,
        ``/f6``) so every distinct candidate has a distinct label.
        """
        parts = [self.algorithm]
        if self.variant is CodeVariant.UNROLLED:
            parts.append("-unrolled")
        elif self.variant is CodeVariant.SIMD and self.algorithm != SCAN_ALGORITHM:
            parts.append("-simd")
        if default_threads is not None and self.threads != default_threads:
            parts.append(f"@{self.threads}t")
        if self.fanout is not None:
            parts.append(f"/f{self.fanout}")
        if self.sizing != "static":
            parts.append(f"+{self.sizing}")
        if self.spill:
            parts.append("+spill")
        return "".join(parts)


def build_join(
    candidate: PlanCandidate,
    *,
    queue_kind: LockKind = LockKind.LOCK_FREE,
    store=None,
    budget_bytes: Optional[float] = None,
) -> JoinAlgorithm:
    """Instantiate the join operator a candidate describes.

    A spill candidate becomes a grace-partitioned join against the given
    :class:`~repro.storage.SealedStore` and budget — both are required,
    since a spill plan without a storage budget has nothing to spill to.
    """
    cls = JOIN_ALGORITHMS.get(candidate.algorithm)
    if cls is None:
        raise ConfigurationError(
            f"candidate {candidate.label()!r} is not a join plan"
        )
    if candidate.spill:
        if store is None or budget_bytes is None:
            raise ConfigurationError(
                f"spill candidate {candidate.label()!r} needs a sealed "
                "store and a storage budget"
            )
        from repro.storage.spill import GraceHashJoin

        return GraceHashJoin(
            candidate.variant, store=store, budget_bytes=budget_bytes
        )
    if cls is RadixJoin:
        return RadixJoin(
            candidate.variant,
            radix_bits=candidate.fanout,
            queue_kind=queue_kind,
        )
    if cls is CrkJoin:
        return CrkJoin(candidate.variant, radix_bits=candidate.fanout)
    return cls(candidate.variant)


def static_candidate(template, catalog_variant: CodeVariant) -> PlanCandidate:
    """The repo's historical hardcoded choice for ``template``.

    Exactly what :class:`~repro.workload.jobs.JobCatalog` always executed:
    ``RadixJoin`` at the catalog's variant for joins and TPC-H plans, the
    SIMD bitvector scan for scans.  ``--planner static`` routes every
    template through this, which is why its outputs are byte-identical to
    pre-planner builds.
    """
    kind = template.kind.value
    if kind == "scan":
        return PlanCandidate(
            SCAN_ALGORITHM, CodeVariant.SIMD, threads=template.threads
        )
    return PlanCandidate("RHO", catalog_variant, threads=template.threads)


#: The default join arm set of the issue: the paper's five algorithms at
#: their naive variants plus the unrolled RHO (the headline optimization).
_DEFAULT_JOIN_ARMS: Tuple[Tuple[str, CodeVariant], ...] = (
    ("PHT", CodeVariant.NAIVE),
    ("RHO", CodeVariant.NAIVE),
    ("RHO", CodeVariant.UNROLLED),
    ("MWAY", CodeVariant.NAIVE),
    ("INL", CodeVariant.NAIVE),
    ("CrkJoin", CodeVariant.NAIVE),
)


def enumerate_candidates(
    template,
    *,
    cores: Optional[int] = None,
    thread_options: Tuple[int, ...] = (),
    fanouts: Tuple[Optional[int], ...] = (None,),
    sizings: Tuple[str, ...] = ("static",),
    spills: Tuple[bool, ...] = (False,),
) -> Tuple[PlanCandidate, ...]:
    """All candidates for ``template``, after applying its ``plan_hints``.

    ``thread_options`` adds thread counts beyond the template's own (each
    capped at ``cores``); ``fanouts`` adds explicit radix fan-outs for the
    partitioned joins (``None`` keeps each algorithm's auto choice);
    ``sizings`` widens the enclave sizing dimension.  Scans and TPC-H
    plans enumerate the dimensions that apply to them (scans have a single
    kernel; TPC-H plans vary the join algorithm of their join steps).
    ``spills=(False, True)`` adds a sealed-spill twin of each hash-join
    arm (PHT only: the grace-partitioned spill operator is a hash join,
    so spilling other algorithms would change their identity); the
    default ``(False,)`` keeps the space identical to pre-storage builds.
    """
    kind = template.kind.value
    hints: Optional[PlanHints] = getattr(template, "plan_hints", None)
    threads_seen = dict.fromkeys(
        (template.threads, *thread_options)
    )  # insertion-ordered, template's own count first
    thread_counts = [
        t for t in threads_seen if cores is None or t <= cores
    ] or [template.threads]

    candidates = []
    if kind == "scan":
        for threads in thread_counts:
            candidates.append(
                PlanCandidate(
                    SCAN_ALGORITHM, CodeVariant.SIMD, threads=threads
                )
            )
    else:
        for algorithm, variant in _DEFAULT_JOIN_ARMS:
            partitioned = algorithm in ("RHO", "CrkJoin")
            spill_options = spills if algorithm == "PHT" else (False,)
            for threads in thread_counts:
                for sizing in sizings:
                    for fanout in fanouts if partitioned else (None,):
                        for spill in spill_options:
                            candidates.append(
                                PlanCandidate(
                                    algorithm,
                                    variant,
                                    threads=threads,
                                    sizing=sizing,
                                    fanout=fanout,
                                    spill=spill,
                                )
                            )
    if hints is not None:
        admitted = tuple(c for c in candidates if hints.admits(c))
        if not admitted:
            raise ConfigurationError(
                f"template {template.name!r}: plan_hints admit no candidate"
            )
        return admitted
    return tuple(candidates)
