"""Per-query plan selection under the current EPC residency.

The :class:`Planner` prices every admitted candidate once (estimates are
pure functions of the template, spec, and calibration, so they are cached
per template), then ranks under a given EPC *headroom*: a candidate whose
working set exceeds the free EPC budget does not become infeasible — SGXv2
keeps running, it just runs slower — so its cycles are inflated by the
same overflow model the serving scheduler charges
(``EDMM_OVERFLOW_SLOWDOWN`` x the overflowing fraction of the working
set).  That inflation is what moves the CrkJoin/RHO crossover with EPC
pressure: RHO's partitioning scratch doubles its residency, so under a
squeezed budget the smaller-footprint arms win even though they lose on
raw cycles.

``explain()`` renders the whole decision: the statistics line, the query
plan shape for TPC-H templates, and every candidate with its estimated
cycles and — for the losers — the reason it lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.enclave.runtime import ExecutionSetting
from repro.machine import SimMachine
from repro.planner.candidates import (
    PlanCandidate,
    enumerate_candidates,
    static_candidate,
)
from repro.planner.costing import (
    PRICING_SEED,
    CandidateEstimate,
    estimate_candidate,
)
from repro.planner.stats import WorkStats


def overflow_fraction(working_set_bytes: float, headroom_bytes: float) -> float:
    """Fraction of a working set that does not fit the free EPC budget."""
    if working_set_bytes <= 0 or headroom_bytes >= working_set_bytes:
        return 0.0
    if headroom_bytes <= 0:
        return 1.0
    return (working_set_bytes - headroom_bytes) / working_set_bytes


def effective_cycles(
    estimate: CandidateEstimate, headroom_bytes: Optional[float]
) -> float:
    """Estimated cycles under ``headroom_bytes`` of free EPC.

    ``None`` headroom means unconstrained (plain CPU, or a budget-less
    serving run).  Overflowing candidates pay the scheduler's own EDMM
    thrash model so the ranking here agrees with what dispatch will
    actually charge.
    """
    if headroom_bytes is None:
        return estimate.cycles
    from repro.workload.scheduler import EDMM_OVERFLOW_SLOWDOWN

    fraction = overflow_fraction(estimate.working_set_bytes, headroom_bytes)
    return estimate.cycles * (1.0 + EDMM_OVERFLOW_SLOWDOWN * fraction)


@dataclass(frozen=True)
class RankedCandidate:
    """One candidate's standing within a decision."""

    estimate: CandidateEstimate
    effective_cycles: float
    rejection: str = ""  # empty for the winner

    @property
    def candidate(self) -> PlanCandidate:
        return self.estimate.candidate


@dataclass(frozen=True)
class PlanDecision:
    """The planner's full answer for one template."""

    template_name: str
    mode: str
    chosen: PlanCandidate
    ranked: Tuple[RankedCandidate, ...]  # best-first
    headroom_bytes: Optional[float]

    @property
    def chosen_estimate(self) -> CandidateEstimate:
        return self.ranked[0].estimate

    def arm_label(self, default_threads: Optional[int] = None) -> str:
        return self.chosen.label(default_threads)


class Planner:
    """Cost-based plan chooser for one (machine, setting) pair.

    ``decide`` ranks all candidates a template admits; ``top_k`` returns
    the best-k arms for the adaptive selector; ``explain`` renders the
    decision as text.  All estimates are memoized per template name, so a
    serving run prices each template's candidate set exactly once.
    """

    def __init__(
        self,
        machine: SimMachine,
        setting: ExecutionSetting,
        *,
        epc_budget_bytes: Optional[float] = None,
        cores: Optional[int] = None,
        pricing_seed: int = PRICING_SEED,
        storage=None,
    ) -> None:
        self.machine = machine
        self.setting = setting
        self.epc_budget_bytes = epc_budget_bytes
        self.cores = cores
        self.pricing_seed = pricing_seed
        #: Sealed-storage config (``--storage``): with one set, every
        #: hash-join arm gains a grace-partitioned spill twin whose
        #: estimate prices the seal/unseal traffic — the in-EPC vs spill
        #: crossover falls out of ranking those twins side by side.
        self.storage = storage
        self._estimates: Dict[str, Tuple[CandidateEstimate, ...]] = {}

    # -- pricing ----------------------------------------------------------

    def estimates(self, template) -> Tuple[CandidateEstimate, ...]:
        """All candidate estimates for ``template`` (memoized by name)."""
        cached = self._estimates.get(template.name)
        if cached is not None:
            return cached
        spills = (False,) if self.storage is None else (False, True)
        candidates = enumerate_candidates(
            template, cores=self.cores, spills=spills
        )
        estimates = tuple(
            estimate_candidate(
                self.machine,
                self.setting,
                template,
                candidate,
                pricing_seed=self.pricing_seed,
                storage=self.storage,
            )
            for candidate in candidates
        )
        self._estimates[template.name] = estimates
        return estimates

    # -- decisions --------------------------------------------------------

    def decide(
        self, template, *, headroom_bytes: Optional[float] = None
    ) -> PlanDecision:
        """Rank ``template``'s candidates and pick the cheapest.

        ``headroom_bytes`` defaults to the planner's whole EPC budget (the
        no-load residency); the scheduler passes the momentary free budget
        instead when it re-decides at dispatch.
        """
        if headroom_bytes is None:
            headroom_bytes = self.epc_budget_bytes
        if not self.setting.enclave_mode:
            headroom_bytes = None  # plain CPU: EPC does not constrain
        scored = sorted(
            self.estimates(template),
            key=lambda e: (effective_cycles(e, headroom_bytes), e.label()),
        )
        best = scored[0]
        best_cycles = effective_cycles(best, headroom_bytes)
        ranked: List[RankedCandidate] = []
        for estimate in scored:
            cycles = effective_cycles(estimate, headroom_bytes)
            rejection = ""
            if estimate is not best:
                slower = cycles / best_cycles if best_cycles else float("inf")
                fraction = (
                    overflow_fraction(
                        estimate.working_set_bytes, headroom_bytes
                    )
                    if headroom_bytes is not None
                    else 0.0
                )
                if fraction > 0:
                    rejection = (
                        f"{slower:.2f}x slower ({fraction:.0%} of working "
                        f"set over EPC headroom)"
                    )
                else:
                    rejection = f"{slower:.2f}x slower on estimated cycles"
            ranked.append(
                RankedCandidate(
                    estimate=estimate,
                    effective_cycles=cycles,
                    rejection=rejection,
                )
            )
        return PlanDecision(
            template_name=template.name,
            mode="cost",
            chosen=best.candidate,
            ranked=tuple(ranked),
            headroom_bytes=headroom_bytes,
        )

    def static_decision(self, template, catalog_variant) -> PlanDecision:
        """The historical hardcoded choice wrapped as a decision."""
        candidate = static_candidate(template, catalog_variant)
        estimate = estimate_candidate(
            self.machine,
            self.setting,
            template,
            candidate,
            pricing_seed=self.pricing_seed,
        )
        ranked = (
            RankedCandidate(
                estimate=estimate, effective_cycles=estimate.cycles
            ),
        )
        return PlanDecision(
            template_name=template.name,
            mode="static",
            chosen=candidate,
            ranked=ranked,
            headroom_bytes=None,
        )

    def top_k(self, template, k: int) -> Tuple[PlanCandidate, ...]:
        """The k analytically best arms (the adaptive selector's arm set)."""
        decision = self.decide(template)
        return tuple(r.candidate for r in decision.ranked[:k])

    # -- reporting --------------------------------------------------------

    def explain(self, template) -> str:
        """Human-readable decision report for ``template``."""
        stats = WorkStats.of(template)
        decision = self.decide(template)
        lines = [
            f"job: {template.name} ({stats.kind}, {template.threads} threads)",
            f"setting: {self.setting.label}",
            f"stats: {stats.describe()}",
        ]
        if stats.kind == "tpch":
            from repro.core.queries.tpch_queries import TPCH_QUERIES

            plan = TPCH_QUERIES[template.query]()
            lines.append("plan:")
            lines.extend(f"  {step}" for step in plan.describe())
        if decision.headroom_bytes is not None:
            lines.append(
                f"epc headroom: {decision.headroom_bytes / 1e6:.0f} MB"
            )
        lines.append(
            f"chosen: {decision.arm_label()} "
            f"(est. {decision.chosen_estimate.cycles / 1e6:.1f} M cycles, "
            f"working set "
            f"{decision.chosen_estimate.working_set_bytes / 1e6:.1f} MB)"
        )
        lines.append("candidates:")
        for rank, entry in enumerate(decision.ranked, start=1):
            est = entry.estimate
            status = "chosen" if not entry.rejection else entry.rejection
            lines.append(
                f"  {rank}. {est.label(template.threads):<16} "
                f"est. {entry.effective_cycles / 1e6:>12.1f} M cycles  "
                f"ws {est.working_set_bytes / 1e6:>8.1f} MB  [{status}]"
            )
        return "\n".join(lines)
