"""Analytical candidate pricing through the calibrated cost model.

Every operator in this repo is *already* an analytical cost function: its
phases build :class:`~repro.memory.access.AccessProfile` batches from the
**logical** input sizes and price them through
:class:`~repro.memory.cost_model.MemoryCostModel` under a
:class:`~repro.memory.cost_model.CostEnvironment` — the physical rows only
flow through the correctness computation, never the cycle count (PHT's
skew estimator is the one data-dependent term, and it is inert on the
uniform foreign-key data the templates describe).  The coster exploits
exactly that: it evaluates a candidate's cost formulas on a *stand-in*
relation capped at :data:`PRICING_ROW_CAP` physical rows whose logical
sizes match the template, under a silent tracer and a throwaway machine.
No template-sized data is generated and nothing is executed at scale —
for the join candidates the estimate equals a real run's cycle count
exactly, because both are the same closed-form function of the logical
sizes, the :class:`~repro.hardware.spec.HardwareSpec`, and the
calibration (including the legacy EPC-paging terms, which is where the
CrkJoin/RHO crossover comes from).

On top of the operator formulas the coster adds the one cost the
operators do not price: the enclave *sizing* strategy.  A statically
committed working set pays one first-touch per page at init
(``static_page_touch_cycles``, parallel across threads); EDMM growth pays
``edmm_page_add_cycles`` per page, serialized through the OS (Fig. 11's
~47x per-page gap, the reason the paper recommends pre-allocation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cache.keys import query_profile_key
from repro.cache.profile import profile_memo
from repro.core.scans.predicate import RangePredicate
from repro.core.scans.simd_scan import BitvectorScan
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.planner.candidates import PlanCandidate, build_join
from repro.tables import generate_join_relation_pair, generate_tpch
from repro.tables.table import Column
from repro.trace import NullTracer, use_tracer
from repro.units import PAGE_BYTES

#: Physical stand-in cap for pricing runs.  Large enough that integer
#: effects (partition counts, tree heights) match the logical shape, small
#: enough that a full candidate enumeration prices in milliseconds.
PRICING_ROW_CAP = 2048

#: TPC-H physical scale-factor cap for pricing runs.
PRICING_SF_CAP = 0.002

#: The seed of every pricing stand-in (pricing is part of the plan, not of
#: the measured run, so it never derives from the session seed).
PRICING_SEED = 13


@dataclass(frozen=True)
class CandidateEstimate:
    """One candidate's analytical price."""

    candidate: PlanCandidate
    cycles: float  # operator cycles + sizing cycles, single query, no load
    seconds: float
    working_set_bytes: int  # EPC residency one execution occupies
    sizing_cycles: float = 0.0  # share of ``cycles`` charged for sizing

    def label(self, default_threads=None) -> str:
        return self.candidate.label(default_threads)


def sizing_cycles(
    params, candidate: PlanCandidate, working_set_bytes: int
) -> float:
    """Cycles to make ``working_set_bytes`` of enclave heap usable.

    ``static`` touches the pages once at enclave init, embarrassingly
    parallel; ``edmm`` EAUG+EACCEPTs them on demand, serialized through
    the OS page handler (Fig. 11).
    """
    if working_set_bytes <= 0:
        return 0.0
    pages = math.ceil(working_set_bytes / PAGE_BYTES)
    if candidate.sizing == "edmm":
        return pages * params.edmm_page_add_cycles
    return pages * params.static_page_touch_cycles / candidate.threads


def estimate_candidate(
    machine: SimMachine,
    setting: ExecutionSetting,
    template,
    candidate: PlanCandidate,
    *,
    pricing_seed: int = PRICING_SEED,
    storage=None,
) -> CandidateEstimate:
    """Price ``candidate`` for ``template`` under ``setting``.

    Deterministic, silent (no trace records leak into the caller's
    tracer), and side-effect free: every call uses a throwaway machine
    built from ``machine``'s spec and calibration.  Estimates are
    memoized through the ambient :func:`~repro.cache.profile_memo`
    (keyed on template, candidate, setting, stand-in caps, seed, and
    calibration digest), so a clustered run that builds one planner per
    shard enumerates the operator formulas once, not once per shard.

    ``storage`` (a :class:`~repro.storage.StorageConfig`) is required to
    price spill candidates: their cycles include the sealed seal/unseal
    traffic against the storage budget, which is where the in-EPC vs
    spill crossover comes from.
    """
    sim = SimMachine(machine.spec, machine.params)
    memo = profile_memo()
    key = ""
    if memo.enabled:
        key = query_profile_key(
            kind="plan-estimate",
            template=template,
            setting=setting,
            candidate=candidate,
            pricing_seed=pricing_seed,
            row_cap=PRICING_ROW_CAP,
            sf_cap=PRICING_SF_CAP,
            params=machine.params,
            spec=machine.spec,
            storage=storage if candidate.spill else None,
        )
        hit = memo.get(key)
        if hit is not None:
            return CandidateEstimate(
                candidate=candidate,
                cycles=float(hit["cycles"]),
                seconds=float(hit["seconds"]),
                working_set_bytes=int(hit["working_set_bytes"]),
                sizing_cycles=float(hit["sizing_cycles"]),
            )
    kind = template.kind.value
    store = None
    budget = None
    if candidate.spill:
        if storage is None:
            raise ConfigurationError(
                f"spill candidate {candidate.label()!r} cannot be priced "
                "without a storage config"
            )
        from repro.storage.sealed import SealedStore

        store = SealedStore(sim.params, block_bytes=storage.block_bytes)
        budget = float(storage.budget_bytes)
    with use_tracer(NullTracer()):
        with sim.context(setting, threads=candidate.threads) as ctx:
            if kind == "join":
                build, probe = generate_join_relation_pair(
                    template.build_bytes,
                    template.probe_bytes,
                    seed=pricing_seed,
                    physical_row_cap=PRICING_ROW_CAP,
                )
                join = build_join(
                    candidate, store=store, budget_bytes=budget
                )
                result = join.run(ctx, build, probe)
                cycles = result.cycles
            elif kind == "scan":
                logical_rows = int(template.scan_bytes // 4)
                physical = max(1, min(PRICING_ROW_CAP, logical_rows))
                column = Column("values", np.arange(physical, dtype=np.int32))
                result = BitvectorScan(CodeVariant.SIMD).run(
                    ctx,
                    column,
                    RangePredicate(0, physical // 10),
                    sim_scale=logical_rows / physical,
                )
                cycles = result.cycles
            elif kind == "tpch":
                from repro.core.queries.executor import QueryExecutor
                from repro.core.queries.tpch_queries import TPCH_QUERIES

                data = generate_tpch(
                    template.scale_factor,
                    seed=pricing_seed,
                    physical_sf_cap=PRICING_SF_CAP,
                )
                tables = {
                    "customer": data.customer,
                    "orders": data.orders,
                    "lineitem": data.lineitem,
                    "part": data.part,
                }
                plan = TPCH_QUERIES[template.query]()
                executor = QueryExecutor(
                    candidate.variant,
                    join_factory=lambda: build_join(
                        candidate, store=store, budget_bytes=budget
                    ),
                )
                cycles = executor.run(ctx, plan, tables).cycles
            else:
                raise ConfigurationError(f"unknown job kind {kind!r}")
            working_set = 0
            if ctx.enclave is not None:
                working_set = int(
                    ctx.enclave.config.heap_bytes - ctx.enclave.heap_free_bytes
                )
    sizing = 0.0
    if setting.enclave_mode:
        sizing = sizing_cycles(sim.params, candidate, working_set)
    total = cycles + sizing
    if memo.enabled:
        memo.put(
            key,
            {
                "cycles": float(total),
                "seconds": float(total / sim.frequency_hz),
                "working_set_bytes": int(working_set),
                "sizing_cycles": float(sizing),
            },
        )
    return CandidateEstimate(
        candidate=candidate,
        cycles=total,
        seconds=total / sim.frequency_hz,
        working_set_bytes=working_set,
        sizing_cycles=sizing,
    )
