"""Logical statistics and cardinality estimates for one job template.

The planner never touches physical data: everything it prices derives
from the *logical* sizes a :class:`~repro.workload.jobs.JobTemplate`
declares (the same quantities the cost model charges).  ``WorkStats``
normalizes the three template kinds into one record the candidate
enumerator and the coster consume, plus the cardinality estimates an
``explain()`` report shows.

Join conventions follow the paper (Sec. 4): 8-byte <key, payload> tuples,
primary-key build side, foreign-key probe side — so every probe row
matches exactly once and the estimated output cardinality *is* the probe
cardinality.  Scans reproduce the serving scan template (4-byte values,
a 10 % range predicate); TPC-H statistics come from the plan's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.tables.generator import JOIN_TUPLE_BYTES

#: Bytes per scanned value in the serving scan template (int32 column).
SCAN_VALUE_BYTES = 4

#: Selectivity of the serving scan template's range predicate.
SCAN_SELECTIVITY = 0.1

#: Textbook default selectivity charged per scanned predicate column of a
#: TPC-H filter step.  Deliberately crude — the Q-error tracker exists to
#: measure exactly how crude, and to replace estimates with executed
#: cardinalities as they are observed.
DEFAULT_FILTER_SELECTIVITY = 0.25

#: TPC-H base-table rows per unit scale factor (the generator's shapes;
#: lineitem averages 4 items per order).
TPCH_BASE_ROWS = {
    "customer": 150_000.0,
    "orders": 1_500_000.0,
    "lineitem": 6_000_000.0,
    "part": 200_000.0,
}


@dataclass(frozen=True)
class WorkStats:
    """Logical work description of one job template.

    ``kind`` is the template kind's string value (``"join"`` / ``"scan"``
    / ``"tpch"``) so this module never imports the workload package (which
    imports the planner — the dependency points one way only).
    """

    name: str
    kind: str
    threads: int
    build_rows: float = 0.0
    build_bytes: float = 0.0
    probe_rows: float = 0.0
    probe_bytes: float = 0.0
    scan_rows: float = 0.0
    scan_bytes: float = 0.0
    query: str = ""
    scale_factor: float = 0.0

    @classmethod
    def of(cls, template) -> "WorkStats":
        """Statistics of a :class:`~repro.workload.jobs.JobTemplate`."""
        kind = template.kind.value
        if kind == "join":
            return cls(
                name=template.name,
                kind=kind,
                threads=template.threads,
                build_rows=template.build_bytes / JOIN_TUPLE_BYTES,
                build_bytes=float(template.build_bytes),
                probe_rows=template.probe_bytes / JOIN_TUPLE_BYTES,
                probe_bytes=float(template.probe_bytes),
            )
        if kind == "scan":
            return cls(
                name=template.name,
                kind=kind,
                threads=template.threads,
                scan_rows=template.scan_bytes / SCAN_VALUE_BYTES,
                scan_bytes=float(template.scan_bytes),
            )
        if kind == "tpch":
            return cls(
                name=template.name,
                kind=kind,
                threads=template.threads,
                query=template.query,
                scale_factor=float(template.scale_factor),
            )
        raise ConfigurationError(f"unknown job kind {kind!r}")

    # -- cardinalities ----------------------------------------------------

    @property
    def input_rows(self) -> float:
        """Total rows the job consumes (the throughput numerator)."""
        if self.kind == "join":
            return self.build_rows + self.probe_rows
        if self.kind == "scan":
            return self.scan_rows
        return 0.0  # TPC-H: per-plan, see estimated_cardinalities

    @property
    def estimated_matches(self) -> float:
        """Estimated join output cardinality.

        Foreign-key semantics (Sec. 4 "Join data"): every probe row
        references exactly one build key, so the estimate is exact.
        """
        return self.probe_rows if self.kind == "join" else 0.0

    @property
    def estimated_selected_rows(self) -> float:
        """Estimated qualifying rows of the scan's range predicate."""
        return self.scan_rows * SCAN_SELECTIVITY if self.kind == "scan" else 0.0

    def describe(self) -> str:
        """One statistics line for ``explain`` output."""
        if self.kind == "join":
            return (
                f"join: build {self.build_rows / 1e6:.1f} M rows "
                f"({self.build_bytes / 1e6:.0f} MB), probe "
                f"{self.probe_rows / 1e6:.1f} M rows "
                f"({self.probe_bytes / 1e6:.0f} MB), "
                f"est. matches {self.estimated_matches / 1e6:.1f} M (FK)"
            )
        if self.kind == "scan":
            return (
                f"scan: {self.scan_rows / 1e6:.1f} M values "
                f"({self.scan_bytes / 1e6:.0f} MB), est. selected "
                f"{self.estimated_selected_rows / 1e6:.1f} M "
                f"({SCAN_SELECTIVITY:.0%} range predicate)"
            )
        return f"tpch: {self.query} at SF {self.scale_factor:g}"


# -- Q-error: cardinality-estimate accuracy ------------------------------


def q_error(estimated: float, actual: float) -> float:
    """The Q-error of one cardinality estimate: ``max(e/a, a/e)``.

    Symmetric, multiplicative, >= 1.0 with equality iff exact — the
    standard accuracy metric of the cardinality-estimation literature.
    Zero cardinalities clamp to one row so an empty intermediate cannot
    blow the metric up to infinity.
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def tpch_base_rows(scale_factor: float) -> Dict[str, float]:
    """Analytic base-table cardinalities at ``scale_factor``."""
    return {
        name: rows * float(scale_factor)
        for name, rows in TPCH_BASE_ROWS.items()
    }


def estimate_plan_cardinalities(
    plan, base_rows: Mapping[str, float]
) -> Dict[str, float]:
    """Estimated output rows per step of a TPC-H query plan.

    The classic System-R recipe under independence and FK-integrity
    assumptions: a filter keeps :data:`DEFAULT_FILTER_SELECTIVITY` per
    scanned predicate column; a join keeps the fraction of probe rows
    whose (unique-side) build key survived the build's filters.  Both
    assumptions are knowingly wrong in places — correlated predicates,
    non-uniform dates — which is precisely what the Q-error tracker
    quantifies against executed cardinalities.
    """
    from repro.core.queries.plan import FilterStep, JoinStep

    rows: Dict[str, float] = dict(base_rows)
    # The unique-key *domain* a table descends from: filters shrink row
    # counts but not key domains, and join outputs inherit the probe's.
    domain: Dict[str, float] = dict(base_rows)
    estimates: Dict[str, float] = {}
    for step in plan.steps:
        if isinstance(step, FilterStep):
            source = rows[step.source]
            selectivity = DEFAULT_FILTER_SELECTIVITY ** len(step.scan_columns)
            rows[step.output] = source * selectivity
            domain[step.output] = domain[step.source]
            estimates[step.output] = rows[step.output]
        elif isinstance(step, JoinStep):
            build = rows[step.build]
            probe = rows[step.probe]
            fraction = min(1.0, build / max(domain[step.build], 1.0))
            rows[step.output] = probe * fraction
            domain[step.output] = domain[step.probe]
            estimates[step.output] = rows[step.output]
    return estimates


@dataclass
class QErrorTracker:
    """Running cardinality-estimate accuracy, fed back into costing.

    ``observe`` records executed (actual) cardinalities per query step;
    ``corrected`` then serves actuals where observed and analytic
    estimates elsewhere, so every consumer of cardinalities — the
    rewrite race's scale factors, ``explain``'s ranked-rewrites section
    — sharpens as real executions happen.  ``worst``/``median`` report
    the Q-error of the *corrected* estimates, which is what visibly
    shrinks over a serving run as templates get observed.
    """

    #: (query, step output) -> executed logical rows.
    actuals: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: (query, step output) -> the analytic estimate it replaced.
    estimates: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def register(
        self, query: str, estimates: Mapping[str, float]
    ) -> None:
        """Declare the analytic estimates of one query's plan steps."""
        for step, value in estimates.items():
            self.estimates[(query, step)] = float(value)

    def observe(
        self, query: str, cardinalities: Iterable[Tuple[str, float]]
    ) -> None:
        """Record executed cardinalities for one query's plan steps."""
        for step, value in cardinalities:
            self.actuals[(query, step)] = float(value)

    def corrected(self, query: str, step: str, estimate: float) -> float:
        """``estimate`` corrected by observation, when one exists."""
        return self.actuals.get((query, step), float(estimate))

    def raw_q_errors(self, query: str = "") -> Dict[Tuple[str, str], float]:
        """Per-step Q-error of the *analytic* estimates against executed
        actuals (observed steps only) — what the baseline test pins.
        ``query`` restricts to one query's steps; empty means all.
        """
        return {
            key: q_error(self.estimates[key], actual)
            for key, actual in self.actuals.items()
            if key in self.estimates and (not query or key[0] == query)
        }

    def corrected_q_errors(
        self, query: str = ""
    ) -> Dict[Tuple[str, str], float]:
        """Per-step Q-error of the *corrected* estimates — what the
        planner actually prices with right now.  Exactly 1.0 for every
        observed step, so this visibly shrinks as executions happen."""
        return {
            key: q_error(self.corrected(*key, self.estimates[key]), actual)
            for key, actual in self.actuals.items()
            if key in self.estimates and (not query or key[0] == query)
        }

    def raw_worst(self, query: str = "") -> float:
        """Max raw analytic Q-error over every observed step."""
        errors = self.raw_q_errors(query)
        return max(errors.values()) if errors else 1.0

    def raw_median(self, query: str = "") -> float:
        """Median raw analytic Q-error over every observed step."""
        errors = sorted(self.raw_q_errors(query).values())
        if not errors:
            return 1.0
        middle = len(errors) // 2
        if len(errors) % 2:
            return errors[middle]
        return 0.5 * (errors[middle - 1] + errors[middle])

    def corrected_worst(self, query: str = "") -> float:
        """Max corrected Q-error over every observed step (1.0 once a
        query's cardinalities have been observed)."""
        errors = self.corrected_q_errors(query)
        return max(errors.values()) if errors else 1.0
