"""Logical statistics and cardinality estimates for one job template.

The planner never touches physical data: everything it prices derives
from the *logical* sizes a :class:`~repro.workload.jobs.JobTemplate`
declares (the same quantities the cost model charges).  ``WorkStats``
normalizes the three template kinds into one record the candidate
enumerator and the coster consume, plus the cardinality estimates an
``explain()`` report shows.

Join conventions follow the paper (Sec. 4): 8-byte <key, payload> tuples,
primary-key build side, foreign-key probe side — so every probe row
matches exactly once and the estimated output cardinality *is* the probe
cardinality.  Scans reproduce the serving scan template (4-byte values,
a 10 % range predicate); TPC-H statistics come from the plan's shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tables.generator import JOIN_TUPLE_BYTES

#: Bytes per scanned value in the serving scan template (int32 column).
SCAN_VALUE_BYTES = 4

#: Selectivity of the serving scan template's range predicate.
SCAN_SELECTIVITY = 0.1


@dataclass(frozen=True)
class WorkStats:
    """Logical work description of one job template.

    ``kind`` is the template kind's string value (``"join"`` / ``"scan"``
    / ``"tpch"``) so this module never imports the workload package (which
    imports the planner — the dependency points one way only).
    """

    name: str
    kind: str
    threads: int
    build_rows: float = 0.0
    build_bytes: float = 0.0
    probe_rows: float = 0.0
    probe_bytes: float = 0.0
    scan_rows: float = 0.0
    scan_bytes: float = 0.0
    query: str = ""
    scale_factor: float = 0.0

    @classmethod
    def of(cls, template) -> "WorkStats":
        """Statistics of a :class:`~repro.workload.jobs.JobTemplate`."""
        kind = template.kind.value
        if kind == "join":
            return cls(
                name=template.name,
                kind=kind,
                threads=template.threads,
                build_rows=template.build_bytes / JOIN_TUPLE_BYTES,
                build_bytes=float(template.build_bytes),
                probe_rows=template.probe_bytes / JOIN_TUPLE_BYTES,
                probe_bytes=float(template.probe_bytes),
            )
        if kind == "scan":
            return cls(
                name=template.name,
                kind=kind,
                threads=template.threads,
                scan_rows=template.scan_bytes / SCAN_VALUE_BYTES,
                scan_bytes=float(template.scan_bytes),
            )
        if kind == "tpch":
            return cls(
                name=template.name,
                kind=kind,
                threads=template.threads,
                query=template.query,
                scale_factor=float(template.scale_factor),
            )
        raise ConfigurationError(f"unknown job kind {kind!r}")

    # -- cardinalities ----------------------------------------------------

    @property
    def input_rows(self) -> float:
        """Total rows the job consumes (the throughput numerator)."""
        if self.kind == "join":
            return self.build_rows + self.probe_rows
        if self.kind == "scan":
            return self.scan_rows
        return 0.0  # TPC-H: per-plan, see estimated_cardinalities

    @property
    def estimated_matches(self) -> float:
        """Estimated join output cardinality.

        Foreign-key semantics (Sec. 4 "Join data"): every probe row
        references exactly one build key, so the estimate is exact.
        """
        return self.probe_rows if self.kind == "join" else 0.0

    @property
    def estimated_selected_rows(self) -> float:
        """Estimated qualifying rows of the scan's range predicate."""
        return self.scan_rows * SCAN_SELECTIVITY if self.kind == "scan" else 0.0

    def describe(self) -> str:
        """One statistics line for ``explain`` output."""
        if self.kind == "join":
            return (
                f"join: build {self.build_rows / 1e6:.1f} M rows "
                f"({self.build_bytes / 1e6:.0f} MB), probe "
                f"{self.probe_rows / 1e6:.1f} M rows "
                f"({self.probe_bytes / 1e6:.0f} MB), "
                f"est. matches {self.estimated_matches / 1e6:.1f} M (FK)"
            )
        if self.kind == "scan":
            return (
                f"scan: {self.scan_rows / 1e6:.1f} M values "
                f"({self.scan_bytes / 1e6:.0f} MB), est. selected "
                f"{self.estimated_selected_rows / 1e6:.1f} M "
                f"({SCAN_SELECTIVITY:.0%} range predicate)"
            )
        return f"tpch: {self.query} at SF {self.scale_factor:g}"
