"""Online refinement of plan choices from observed serving latencies.

Analytical estimates are only as good as the calibration; a serving run
additionally sees effects no single-query estimate prices (interference,
momentary EPC squeeze).  The adaptive selector treats the planner's top-k
candidates as bandit arms and refines per-template choices online with a
seeded epsilon-greedy policy: exploit the arm with the best sliding-window
mean of *observed* latencies, explore with a probability that decays as
observations accumulate.

Determinism is load-bearing (an acceptance criterion): every exploration
draw derives from *decision identity* — a SHA-256 over the seed, the
template, the query id, and the dispatch attempt — exactly like
:class:`repro.faults.inject.FaultInjector`.  No RNG state is threaded
through the run, so the same seed yields byte-identical choices whether
the session runs serially, under ``--jobs 4``, or replays from cache; and
because the serving event loop advances simulated time single-threadedly,
the observation order (and therefore the window means) is deterministic
too.

:class:`OracleSelector` is the experiment-only upper bound: it picks per
dispatch with knowledge of the momentary EPC headroom — information no
production planner has.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.planner.candidates import PlanCandidate

#: Default exploration rate at the first decision.
DEFAULT_EPSILON = 0.08

#: Observations at which the exploration rate has halved.
DEFAULT_DECAY = 32

#: Sliding-window length of the per-arm latency mean.
DEFAULT_WINDOW = 16


@dataclass(frozen=True)
class ArmCost:
    """One bandit arm: a candidate plus its analytical prior."""

    candidate: PlanCandidate
    label: str
    service_s: float  # analytical no-contention estimate
    working_set_bytes: int


def _effective_service(arm: ArmCost, headroom_bytes: Optional[float]) -> float:
    """The arm's prior under ``headroom_bytes`` of free EPC."""
    from repro.planner.choose import overflow_fraction
    from repro.workload.scheduler import EDMM_OVERFLOW_SLOWDOWN

    if headroom_bytes is None:
        return arm.service_s
    fraction = overflow_fraction(arm.working_set_bytes, headroom_bytes)
    return arm.service_s * (1.0 + EDMM_OVERFLOW_SLOWDOWN * fraction)


def _check_arms(
    arms_by_template: Mapping[str, Sequence[ArmCost]],
) -> Dict[str, Tuple[ArmCost, ...]]:
    checked: Dict[str, Tuple[ArmCost, ...]] = {}
    for name, arms in arms_by_template.items():
        if not arms:
            raise ConfigurationError(
                f"template {name!r} has no plan arms to select between"
            )
        labels = [arm.label for arm in arms]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                f"template {name!r} has duplicate arm labels: {labels}"
            )
        checked[name] = tuple(arms)
    return checked


class PlanSelector:
    """Base contract the serving scheduler talks to.

    ``select`` is called once per dispatch attempt; ``observe`` once per
    successfully finished query with the latency the client saw.  Both
    selectors keep the first arm of each template's sequence as the
    analytical favorite, so arm order is part of the contract (the
    planner hands arms best-first).
    """

    mode = "static"

    def __init__(
        self, arms_by_template: Mapping[str, Sequence[ArmCost]]
    ) -> None:
        self._arms = _check_arms(arms_by_template)

    def arms(self, template_name: str) -> Tuple[ArmCost, ...]:
        arms = self._arms.get(template_name)
        if arms is None:
            raise ConfigurationError(
                f"no plan arms registered for template {template_name!r}"
            )
        return arms

    def select(
        self,
        template_name: str,
        query_id: int,
        attempt: int,
        *,
        headroom_bytes: Optional[float] = None,
    ) -> ArmCost:
        raise NotImplementedError

    def observe(
        self, template_name: str, label: str, latency_s: float
    ) -> None:
        """Default: ignore observations (stateless selectors)."""


class EpsilonGreedySelector(PlanSelector):
    """Seeded epsilon-greedy bandit over each template's top-k arms."""

    mode = "adaptive"

    def __init__(
        self,
        arms_by_template: Mapping[str, Sequence[ArmCost]],
        *,
        seed: int,
        epsilon: float = DEFAULT_EPSILON,
        decay: int = DEFAULT_DECAY,
        window: int = DEFAULT_WINDOW,
        salt: str = "serving",
    ) -> None:
        super().__init__(arms_by_template)
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError("epsilon must be within [0, 1]")
        if decay < 1:
            raise ConfigurationError("decay must be >= 1 observation")
        if window < 1:
            raise ConfigurationError("window must be >= 1 observation")
        self.seed = seed
        self.epsilon = epsilon
        self.decay = decay
        self.window = window
        self.salt = salt
        self._latencies: Dict[str, Dict[str, Deque[float]]] = {
            name: {arm.label: deque(maxlen=window) for arm in arms}
            for name, arms in self._arms.items()
        }
        self._observations: Dict[str, int] = dict.fromkeys(self._arms, 0)

    # -- deterministic randomness ----------------------------------------

    def _draws(
        self, template_name: str, query_id: int, attempt: int
    ) -> Tuple[float, float]:
        """Two uniform [0, 1) draws from decision identity (cf. faults)."""
        token = (
            f"{self.seed}:planner.{self.salt}:"
            f"{template_name}:{query_id}:{attempt}"
        )
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        scale = float(2**64)
        return (
            int.from_bytes(digest[:8], "big") / scale,
            int.from_bytes(digest[8:16], "big") / scale,
        )

    # -- the policy -------------------------------------------------------

    def exploration_rate(self, template_name: str) -> float:
        """Current epsilon: halves every ``decay`` observations."""
        seen = self._observations.get(template_name, 0)
        return self.epsilon * self.decay / (self.decay + seen)

    def _mean_latency(
        self,
        template_name: str,
        arm: ArmCost,
        headroom_bytes: Optional[float] = None,
    ) -> Tuple[float, int]:
        """(window mean, sample count); prior estimate when unobserved.

        The unobserved prior is the *headroom-adjusted* effective service
        (the cost model's own overflow pricing), not the raw estimate:
        observations lag dispatch by the whole queue, so a raw prior frozen
        before an EPC squeeze would keep nominating big-footprint arms the
        model already knows have turned catastrophic — each such pick adds
        backlog that delays the very feedback that would correct it.
        """
        window = self._latencies[template_name][arm.label]
        if not window:
            return _effective_service(arm, headroom_bytes), 0
        return sum(window) / len(window), len(window)

    def select(
        self,
        template_name: str,
        query_id: int,
        attempt: int,
        *,
        headroom_bytes: Optional[float] = None,
    ) -> ArmCost:
        arms = self.arms(template_name)
        if len(arms) == 1:
            return arms[0]
        explore, pick = self._draws(template_name, query_id, attempt)
        if explore < self.exploration_rate(template_name):
            return arms[min(int(pick * len(arms)), len(arms) - 1)]
        # Exploit: best sliding-window mean; unobserved arms compete with
        # their analytical prior, so the cold start ranks like the cost
        # planner would.  ``min`` is stable, so ties keep the planner's
        # best-first arm order — deterministic by construction.
        return min(
            arms,
            key=lambda arm: self._mean_latency(
                template_name, arm, headroom_bytes
            )[0],
        )

    def observe(
        self, template_name: str, label: str, latency_s: float
    ) -> None:
        windows = self._latencies.get(template_name)
        if windows is None or label not in windows:
            return  # late finish of an arm from another selector's run
        windows[label].append(latency_s)
        self._observations[template_name] += 1

    def snapshot(self, template_name: str) -> Dict[str, Tuple[float, int]]:
        """Per-arm (window mean, samples) for reports and tests."""
        return {
            arm.label: self._mean_latency(template_name, arm)
            for arm in self.arms(template_name)
        }


class CostSelector(PlanSelector):
    """The fixed cost-based choice wrapped as a selector.

    Always returns the analytically best arm (the first one — the planner
    hands arms best-first).  Exists so the scheduler has one code path for
    every non-static planner mode.
    """

    mode = "cost"

    def select(
        self,
        template_name: str,
        query_id: int,
        attempt: int,
        *,
        headroom_bytes: Optional[float] = None,
    ) -> ArmCost:
        return self.arms(template_name)[0]


class OracleSelector(PlanSelector):
    """Experiment-only upper bound: sees the momentary EPC headroom."""

    mode = "oracle"

    def select(
        self,
        template_name: str,
        query_id: int,
        attempt: int,
        *,
        headroom_bytes: Optional[float] = None,
    ) -> ArmCost:
        arms = self.arms(template_name)
        return min(
            arms, key=lambda arm: _effective_service(arm, headroom_bytes)
        )
