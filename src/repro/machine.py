"""The simulated machine and per-experiment execution contexts.

:class:`SimMachine` wires together the hardware spec (Table 1), the
calibrated cost parameters, the topology, the allocator, and the cost model.
:class:`ExecutionContext` binds one of the paper's execution settings to a
concrete placement (which cores run, where data lives) and — for SGX
settings — to a live enclave, exposing exactly the operations operators
need: allocate memory, build an executor, convert cycles to time.

Typical use::

    machine = SimMachine()
    ctx = machine.context(ExecutionSetting.sgx_data_in_enclave(), threads=16)
    result = RadixJoin(variant=CodeVariant.UNROLLED).run(ctx, r_table, s_table)
"""

from __future__ import annotations

from typing import Optional

from repro.enclave.enclave import Enclave, EnclaveConfig
from repro.enclave.runtime import ExecutionSetting
from repro.errors import ConfigurationError
from repro.exec.executor import ParallelExecutor
from repro.exec.placement import Placement
from repro.hardware.calibration import CostParameters, paper_calibration
from repro.hardware.spec import HardwareSpec, paper_testbed
from repro.hardware.topology import Topology
from repro.memory.access import AccessProfile, Locality
from repro.memory.allocator import MemoryAllocator, Region
from repro.memory.cost_model import MemoryCostModel
from repro.units import GiB, PAGE_BYTES

#: Default statically committed enclave heap: large enough for every
#: experiment in the paper that is *not* about dynamic sizing (Fig. 11).
DEFAULT_ENCLAVE_HEAP_BYTES = 48 * GiB


class SimMachine:
    """The simulated dual-socket SGXv2 server."""

    def __init__(
        self,
        spec: Optional[HardwareSpec] = None,
        params: Optional[CostParameters] = None,
    ) -> None:
        self.spec = spec or paper_testbed()
        self.params = params or paper_calibration()
        self.topology = Topology(self.spec)
        self.allocator = MemoryAllocator(
            self.topology,
            # Legacy (paging) platforms allow enclaves beyond the EPC; the
            # cost model charges the faults.
            allow_epc_oversubscription=self.params.epc_paging_enabled,
        )
        self.cost_model = MemoryCostModel(self.spec, self.params)

    @property
    def frequency_hz(self) -> float:
        return self.spec.base_frequency_hz

    def seconds(self, cycles: float) -> float:
        """Convert simulated cycles to wall-clock seconds."""
        return cycles / self.frequency_hz

    def context(
        self,
        setting: ExecutionSetting,
        *,
        threads: int = 1,
        data_node: int = 0,
        exec_node: Optional[int] = None,
        placement: Optional[Placement] = None,
        enclave_config: Optional[EnclaveConfig] = None,
    ) -> "ExecutionContext":
        """Create a context for one experiment run.

        ``data_node`` is where memory (and the enclave) is homed;
        ``exec_node`` (default: same as data) is where threads are pinned,
        unless an explicit ``placement`` overrides both.
        """
        if placement is None:
            node = data_node if exec_node is None else exec_node
            placement = Placement.on_node(self.topology, node, threads)
        enclave = None
        if setting.enclave_mode:
            config = enclave_config or EnclaveConfig(
                heap_bytes=DEFAULT_ENCLAVE_HEAP_BYTES, node=data_node
            )
            if config.node != data_node:
                raise ConfigurationError(
                    "enclave node must match data_node (EPC pages are "
                    "allocated on the enclave's node)"
                )
            enclave = Enclave(config, self.allocator)
            enclave.initialize()
        return ExecutionContext(
            machine=self,
            setting=setting,
            placement=placement,
            data_node=data_node,
            enclave=enclave,
        )


class ExecutionContext:
    """One experiment configuration: setting + placement + data home."""

    def __init__(
        self,
        machine: SimMachine,
        setting: ExecutionSetting,
        placement: Placement,
        data_node: int,
        enclave: Optional[Enclave],
    ) -> None:
        if setting.enclave_mode and enclave is None:
            raise ConfigurationError("SGX settings require an enclave")
        self.machine = machine
        self.setting = setting
        self.placement = placement
        self.data_node = data_node
        self.enclave = enclave
        self._regions = []

    @property
    def threads(self) -> int:
        return self.placement.threads

    @property
    def data_locality(self) -> Locality:
        """Where operator data lives under this context's setting."""
        return Locality(node=self.data_node, in_enclave=self.setting.data_in_enclave)

    def allocate(
        self, name: str, size_bytes: int, profile: Optional[AccessProfile] = None
    ) -> Region:
        """Allocate operator memory according to the execution setting.

        Data-in-enclave settings allocate from the enclave (EPC; may invoke
        EDMM when the enclave is dynamically sized); the others allocate
        untrusted DRAM on ``data_node``.  When ``profile`` is given, paging
        costs are charged to it.
        """
        if self.setting.data_in_enclave:
            if self.enclave is None:
                from repro.errors import EnclaveStateError

                raise EnclaveStateError(
                    "context is closed: its enclave has been destroyed"
                )
            region = self.enclave.allocate(name, size_bytes, profile)
        else:
            region = self.machine.allocator.allocate(
                name, size_bytes, node=self.data_node, in_enclave=False
            )
            self._regions.append(region)
            if profile is not None:
                profile.sync.pages_touched_statically += -(-size_bytes // PAGE_BYTES)
        return region

    def executor(self) -> ParallelExecutor:
        """A fresh phase executor for this context."""
        return ParallelExecutor(self.machine.cost_model, self.setting, self.placement)

    def close(self) -> None:
        """Release everything the context allocated."""
        for region in self._regions:
            if not region.freed:
                self.machine.allocator.free(region)
        self._regions = []
        if self.enclave is not None:
            from repro.enclave.enclave import EnclaveState

            if self.enclave.state is not EnclaveState.DESTROYED:
                self.enclave.destroy()
            self.enclave = None

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
