"""Query executor: runs materializing plans and prices every operator.

Filters run as SIMD column scans with selective-store materialization;
joins run as RHO radix joins (the paper's Sec. 6 configuration, optionally
with the unroll/reorder optimization) over <key, row-id> pairs, followed by
a gather that materializes the surviving columns of both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.core.joins.base import JoinAlgorithm
from repro.core.joins.radix import RadixJoin
from repro.core.queries.plan import CountStep, FilterStep, JoinStep, QueryPlan
from repro.enclave.sync import LockKind
from repro.errors import PlanError
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind
from repro.tables.table import Column, Table

#: Bytes per column value in the integer-coded TPC-H representation.
_VALUE_BYTES = 4


@dataclass
class QueryResult:
    """Final count plus the simulated cost of every step."""

    name: str
    setting: str
    variant: CodeVariant
    threads: int
    count: int
    count_logical: float
    cycles: float
    step_cycles: Dict[str, float] = field(default_factory=dict)

    def seconds(self, frequency_hz: float) -> float:
        return self.cycles / frequency_hz


class QueryExecutor:
    """Runs :class:`QueryPlan` objects under an execution context.

    ``pipelined=True`` switches from the paper's fully materializing
    scheme (every operator writes its output table, Sec. 6) to a fused
    pipeline: filters stream their qualifying tuples directly into the
    consumer and join outputs skip the intermediate write unless a
    pipeline breaker (a join build side) needs them.  Results are
    identical; only the priced intermediate writes/reads differ.
    """

    def __init__(
        self,
        variant: CodeVariant = CodeVariant.NAIVE,
        *,
        queue_kind: LockKind = LockKind.LOCK_FREE,
        pipelined: bool = False,
        join_factory: Optional[Callable[[], "JoinAlgorithm"]] = None,
    ) -> None:
        self.variant = variant
        self.queue_kind = queue_kind
        self.pipelined = pipelined
        self.join_factory = join_factory

    def _make_join(self) -> "JoinAlgorithm":
        """The join operator for each join step.

        Defaults to the paper's Sec. 6 configuration (RHO at the
        executor's variant); a planner installs its chosen operator via
        ``join_factory``.
        """
        if self.join_factory is not None:
            return self.join_factory()
        return RadixJoin(self.variant, queue_kind=self.queue_kind)

    # ------------------------------------------------------------------

    def run(
        self,
        ctx: ExecutionContext,
        plan: QueryPlan,
        tables: Mapping[str, Table],
        *,
        namespace_out: Optional[Dict[str, Table]] = None,
    ) -> QueryResult:
        """Execute ``plan`` against the base ``tables``.

        ``namespace_out``, when given, receives every (base and
        intermediate) table of the finished run — the rewrite proof and
        Q-error machinery read executed result bags and per-step
        cardinalities from it.  Costing is unaffected either way.
        """
        namespace: Dict[str, Table] = dict(tables)
        # Base tables are resident before the measured query begins (the
        # paper's methodology); in SGX-data-in settings this reserves their
        # EPC space from the statically committed heap.
        for name, table in tables.items():
            ctx.allocate(f"base-{name}", int(table.logical_bytes))
        step_cycles: Dict[str, float] = {}
        total = 0.0
        count: Optional[int] = None
        count_logical = 0.0
        # Join build sides are pipeline breakers: their inputs must exist
        # as tables even in pipelined mode.
        breaker_outputs = {
            step.build for step in plan.steps if isinstance(step, JoinStep)
        }
        for index, step in enumerate(plan.steps):
            if isinstance(step, FilterStep):
                materialized = (not self.pipelined) or (
                    step.output in breaker_outputs
                )
                cycles = self._run_filter(ctx, step, namespace, materialized)
                label = f"{index}:filter:{step.output}"
            elif isinstance(step, JoinStep):
                materialized = (not self.pipelined) or (
                    step.output in breaker_outputs
                )
                cycles = self._run_join(ctx, step, namespace, materialized)
                label = f"{index}:join:{step.output}"
            elif isinstance(step, CountStep):
                result_table = self._resolve(namespace, step.source)
                count = result_table.num_rows
                count_logical = result_table.logical_rows
                cycles = 0.0
                label = f"{index}:count"
            else:  # pragma: no cover - plan validation prevents this
                raise PlanError(f"unknown step type {type(step)!r}")
            step_cycles[label] = cycles
            total += cycles
        assert count is not None  # guaranteed by QueryPlan validation
        if namespace_out is not None:
            namespace_out.update(namespace)
        return QueryResult(
            name=plan.name,
            setting=ctx.setting.label,
            variant=self.variant,
            threads=ctx.threads,
            count=count,
            count_logical=count_logical,
            cycles=total,
            step_cycles=step_cycles,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _resolve(namespace: Mapping[str, Table], name: str) -> Table:
        try:
            return namespace[name]
        except KeyError:
            raise PlanError(f"unknown table {name!r} in plan") from None

    @staticmethod
    def _charge_allocation(
        ctx: ExecutionContext, name: str, size_bytes: int, profile: AccessProfile
    ) -> None:
        """Allocate an intermediate table and charge its paging per thread.

        Static first touches parallelize across threads; EDMM page adds
        serialize (see ``JoinAlgorithm.materialize_output``), so the
        replicated per-thread profile carries the full dynamic count.
        """
        paging = AccessProfile()
        ctx.allocate(name, size_bytes, paging)
        threads = ctx.threads
        profile.sync.pages_added_dynamically += paging.sync.pages_added_dynamically
        profile.sync.pages_touched_statically += (
            paging.sync.pages_touched_statically + threads - 1
        ) // threads

    def _run_filter(
        self,
        ctx: ExecutionContext,
        step: FilterStep,
        namespace: Dict[str, Table],
        materialized: bool = True,
    ) -> float:
        source = self._resolve(namespace, step.source)
        mask = step.predicate(source)
        if mask.shape != (source.num_rows,):
            raise PlanError(
                f"predicate of filter {step.output!r} returned wrong shape"
            )
        result = source.select(mask, step.output)
        result = Table(
            step.output,
            [result.column(name) for name in step.keep],
            sim_scale=source.sim_scale,
        )
        namespace[step.output] = result

        executor = ctx.executor()
        locality = ctx.data_locality
        share_in = source.logical_rows / ctx.threads
        share_out = result.logical_rows / ctx.threads
        profile = AccessProfile()
        # SIMD scan over the predicate columns.
        profile.seq_read(
            share_in,
            _VALUE_BYTES * len(step.scan_columns),
            locality,
            variant=CodeVariant.SIMD,
            working_set_bytes=source.logical_rows
            * _VALUE_BYTES
            * len(step.scan_columns),
            label="filter-scan",
        )
        # Selective store of the kept columns: the whole input of the kept
        # columns is streamed and qualifying rows are compacted by a scalar
        # store loop (the materializing-operator scheme of Sec. 6) — a
        # branchy ~8 cycles/row with plenty of ILP, so only mildly exposed
        # to the enclave loop-execution restriction.
        profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=share_in,
                element_bytes=_VALUE_BYTES * len(step.keep),
                working_set_bytes=source.logical_rows
                * _VALUE_BYTES
                * len(step.keep),
                locality=locality,
                variant=self.variant,
                parallelism=8.0,
                compute_cycles_per_item=8.0,
                table_bytes=64 * 1024.0,  # compaction write buffer
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=0.08,
                label="selective-store",
            )
        )
        if materialized:
            out_bytes = int(result.logical_rows * _VALUE_BYTES * len(step.keep))
            self._charge_allocation(ctx, f"qtmp-{step.output}", out_bytes, profile)
            profile.seq_write(
                share_out,
                _VALUE_BYTES * len(step.keep),
                locality,
                variant=CodeVariant.SIMD,
                working_set_bytes=result.logical_rows
                * _VALUE_BYTES
                * len(step.keep),
                label="filter-out",
            )
        executor.run_uniform_phase("filter", profile)
        return executor.total_cycles()

    def _run_join(
        self,
        ctx: ExecutionContext,
        step: JoinStep,
        namespace: Dict[str, Table],
        materialized: bool = True,
    ) -> float:
        build = self._resolve(namespace, step.build)
        probe = self._resolve(namespace, step.probe)
        build_rowids = Table(
            f"{step.build}-rowids",
            [
                Column("key", build[step.build_key]),
                Column("payload", np.arange(build.num_rows, dtype=np.int64)),
            ],
            sim_scale=build.sim_scale,
        )
        probe_rowids = Table(
            f"{step.probe}-rowids",
            [
                Column("key", probe[step.probe_key]),
                Column("payload", np.arange(probe.num_rows, dtype=np.int64)),
            ],
            sim_scale=probe.sim_scale,
        )
        join = self._make_join()
        pages_before = ctx.enclave.pages_added_total if ctx.enclave else 0
        join_result = join.run(ctx, build_rowids, probe_rowids)
        join_pages = (
            ctx.enclave.pages_added_total - pages_before if ctx.enclave else 0
        )
        assert join_result.match_index is not None
        hit_mask = join_result.match_index >= 0
        probe_rows = np.flatnonzero(hit_mask)
        build_rows = join_result.match_index[probe_rows]

        columns = [
            Column(name, build[name][build_rows]) for name in step.keep_build
        ]
        columns += [
            Column(name, probe[name][probe_rows]) for name in step.keep_probe
        ]
        if not columns:
            # A pure counting join still materializes the matching row ids.
            columns = [Column("_rowid", probe_rows.astype(np.int64))]
        result = Table(step.output, columns, sim_scale=probe.sim_scale)
        namespace[step.output] = result

        # ---- gather/materialization cost on top of the join ------------
        executor = ctx.executor()
        locality = ctx.data_locality
        matches_share = result.logical_rows / ctx.threads
        width = _VALUE_BYTES * max(1, len(step.keep_build) + len(step.keep_probe))
        profile = AccessProfile()
        # EDMM growth caused by the join's own inputs and scratch (only
        # non-zero in dynamically sized enclaves); serialized, so the
        # replicated per-thread profile carries the full count.
        profile.sync.pages_added_dynamically += join_pages
        if step.keep_build:
            # Fetching build-side columns through the match index is a
            # random gather across the build intermediate.
            profile.add(
                AccessBatch(
                    kind=PatternKind.RANDOM_READ,
                    count=matches_share * len(step.keep_build),
                    element_bytes=_VALUE_BYTES,
                    working_set_bytes=build.logical_bytes,
                    locality=locality,
                    variant=self.variant,
                    parallelism=8.0,
                    compute_cycles_per_item=1.0,
                    label="gather-build",
                )
            )
        if materialized:
            out_bytes = int(result.logical_rows * width)
            self._charge_allocation(ctx, f"qtmp-{step.output}", out_bytes, profile)
            profile.seq_write(
                matches_share, width, locality, variant=CodeVariant.SIMD,
                working_set_bytes=result.logical_rows * width,
                label="join-out",
            )
        executor.run_uniform_phase("materialize", profile)
        return join_result.cycles + executor.total_cycles()
