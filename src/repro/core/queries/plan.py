"""Query plans: materializing filter/join/count pipelines (Sec. 6).

The paper's query framework deliberately avoids pipelining: every operator
fully materializes its output (the MonetDB execution scheme), final
aggregations are replaced with ``count(*)``, and dates/categoricals are
integers.  A :class:`QueryPlan` is a linear list of steps over named
(intermediate) tables; the executor in :mod:`repro.core.queries.executor`
runs the steps for real and prices them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Union

import numpy as np

from repro.errors import PlanError
from repro.tables.table import Table

#: A predicate maps a table to a boolean row mask.
Predicate = Callable[[Table], np.ndarray]


@dataclass(frozen=True)
class FilterStep:
    """Materializing selection: keep rows of ``source`` matching the predicate.

    ``scan_columns`` are the columns the predicate reads (priced as the
    scan input); ``keep`` are the columns materialized into ``output``.
    """

    source: str
    output: str
    predicate: Predicate
    scan_columns: Sequence[str]
    keep: Sequence[str]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.scan_columns:
            raise PlanError(f"filter {self.output!r} scans no columns")
        if not self.keep:
            raise PlanError(f"filter {self.output!r} keeps no columns")


@dataclass(frozen=True)
class JoinStep:
    """Materializing equi-join; ``build`` must be the unique-key side.

    The output holds ``keep_build`` + ``keep_probe`` columns of the
    matching row pairs.
    """

    build: str
    probe: str
    build_key: str
    probe_key: str
    output: str
    keep_build: Sequence[str] = field(default_factory=tuple)
    keep_probe: Sequence[str] = field(default_factory=tuple)
    description: str = ""


@dataclass(frozen=True)
class CountStep:
    """The final ``count(*)`` over ``source``."""

    source: str
    description: str = ""


Step = Union[FilterStep, JoinStep, CountStep]


@dataclass(frozen=True)
class QueryPlan:
    """A named, linear sequence of steps ending in a count."""

    name: str
    steps: Sequence[Step]

    def __post_init__(self) -> None:
        if not self.steps:
            raise PlanError(f"query {self.name!r} has no steps")
        if not isinstance(self.steps[-1], CountStep):
            raise PlanError(f"query {self.name!r} must end in a CountStep")
        produced = set()
        for step in self.steps:
            if isinstance(step, FilterStep):
                produced.add(step.output)
            elif isinstance(step, JoinStep):
                produced.add(step.output)

    @property
    def join_count(self) -> int:
        return sum(1 for s in self.steps if isinstance(s, JoinStep))

    def describe(self) -> List[str]:
        """Human-readable one-liner per step."""
        lines = []
        for step in self.steps:
            if isinstance(step, FilterStep):
                lines.append(
                    f"FILTER {step.source} -> {step.output}: {step.description}"
                )
            elif isinstance(step, JoinStep):
                lines.append(
                    f"JOIN {step.build} ⋈ {step.probe} "
                    f"on {step.build_key}={step.probe_key} -> {step.output}"
                )
            else:
                lines.append(f"COUNT(*) over {step.source}")
        return lines
