"""The four TPC-H queries of Sec. 6 (Fig. 17), in the paper's simplified form.

Setup simplifications, mirroring the CrkJoin evaluation the paper adopts:
dates and categorical strings are integers, every operator materializes,
all non-scan/join operators are removed, and the final aggregate is
``count(*)``.  Q10's tiny nation dimension is dropped (its join is
negligible next to customer ⋈ orders ⋈ lineitem); the remaining operator
mix — the part that Fig. 17 measures — is preserved.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.core.queries.plan import CountStep, FilterStep, JoinStep, QueryPlan
from repro.errors import PlanError
from repro.tables.table import Table
from repro.tables.tpch import (
    TpchData,
    date_code,
    returnflag_code,
    segment_code,
    shipinstruct_code,
    shipmode_code,
)

_DATE_1995_03_15 = date_code(1995, 3, 15)
_DATE_1993_10_01 = date_code(1993, 10, 1)
_DATE_1994_01_01 = date_code(1994, 1, 1)
_DATE_1995_01_01 = date_code(1995, 1, 1)


def q3_plan() -> QueryPlan:
    """Q3: shipping priority — BUILDING customers, orders before / lineitems
    after 1995-03-15, customer ⋈ orders ⋈ lineitem."""
    building = segment_code("BUILDING")
    return QueryPlan(
        "Q3",
        (
            FilterStep(
                source="customer",
                output="customer_f",
                predicate=lambda t: t["c_mktsegment"] == building,
                scan_columns=("c_mktsegment",),
                keep=("c_custkey",),
                description="c_mktsegment = 'BUILDING'",
            ),
            FilterStep(
                source="orders",
                output="orders_f",
                predicate=lambda t: t["o_orderdate"] < _DATE_1995_03_15,
                scan_columns=("o_orderdate",),
                keep=("o_orderkey", "o_custkey"),
                description="o_orderdate < 1995-03-15",
            ),
            FilterStep(
                source="lineitem",
                output="lineitem_f",
                predicate=lambda t: t["l_shipdate"] > _DATE_1995_03_15,
                scan_columns=("l_shipdate",),
                keep=("l_orderkey",),
                description="l_shipdate > 1995-03-15",
            ),
            JoinStep(
                build="customer_f",
                probe="orders_f",
                build_key="c_custkey",
                probe_key="o_custkey",
                output="co",
                keep_probe=("o_orderkey",),
            ),
            JoinStep(
                build="co",
                probe="lineitem_f",
                build_key="o_orderkey",
                probe_key="l_orderkey",
                output="col",
            ),
            CountStep(source="col"),
        ),
    )


def q10_plan() -> QueryPlan:
    """Q10: returned items — orders of 1993Q4, lineitems with returnflag R."""
    flag_r = returnflag_code("R")
    return QueryPlan(
        "Q10",
        (
            FilterStep(
                source="orders",
                output="orders_f",
                predicate=lambda t: (t["o_orderdate"] >= _DATE_1993_10_01)
                & (t["o_orderdate"] < _DATE_1994_01_01),
                scan_columns=("o_orderdate",),
                keep=("o_orderkey", "o_custkey"),
                description="o_orderdate in 1993-10 .. 1993-12",
            ),
            FilterStep(
                source="lineitem",
                output="lineitem_f",
                predicate=lambda t: t["l_returnflag"] == flag_r,
                scan_columns=("l_returnflag",),
                keep=("l_orderkey",),
                description="l_returnflag = 'R'",
            ),
            JoinStep(
                build="customer",
                probe="orders_f",
                build_key="c_custkey",
                probe_key="o_custkey",
                output="co",
                keep_probe=("o_orderkey",),
            ),
            JoinStep(
                build="co",
                probe="lineitem_f",
                build_key="o_orderkey",
                probe_key="l_orderkey",
                output="col",
            ),
            CountStep(source="col"),
        ),
    )


def q12_plan() -> QueryPlan:
    """Q12: shipping modes — late lineitems shipped by MAIL or SHIP in 1994."""
    mail = shipmode_code("MAIL")
    ship = shipmode_code("SHIP")

    def lineitem_pred(t: Table) -> np.ndarray:
        mode = (t["l_shipmode"] == mail) | (t["l_shipmode"] == ship)
        late = (t["l_commitdate"] < t["l_receiptdate"]) & (
            t["l_shipdate"] < t["l_commitdate"]
        )
        in_1994 = (t["l_receiptdate"] >= _DATE_1994_01_01) & (
            t["l_receiptdate"] < _DATE_1995_01_01
        )
        return mode & late & in_1994

    return QueryPlan(
        "Q12",
        (
            FilterStep(
                source="lineitem",
                output="lineitem_f",
                predicate=lineitem_pred,
                scan_columns=(
                    "l_shipmode",
                    "l_commitdate",
                    "l_receiptdate",
                    "l_shipdate",
                ),
                keep=("l_orderkey",),
                description="shipmode in (MAIL, SHIP), late, received 1994",
            ),
            JoinStep(
                build="orders",
                probe="lineitem_f",
                build_key="o_orderkey",
                probe_key="l_orderkey",
                output="ol",
            ),
            CountStep(source="ol"),
        ),
    )


def q19_plan() -> QueryPlan:
    """Q19: discounted revenue — three brand/container/quantity disjuncts."""
    air = shipmode_code("AIR")
    reg_air = shipmode_code("REG AIR")
    deliver = shipinstruct_code("DELIVER IN PERSON")
    # Brand/container constants of the TPC-H reference parameters, coded.
    brand1, brand2, brand3 = 11, 22, 33
    containers1 = (0, 1, 2, 3)  # SM CASE / SM BOX / SM PACK / SM PKG
    containers2 = (10, 11, 12, 13)  # MED BAG / MED BOX / MED PKG / MED PACK
    containers3 = (20, 21, 22, 23)  # LG CASE / LG BOX / LG PACK / LG PKG

    def lineitem_pred(t: Table) -> np.ndarray:
        mode = (t["l_shipmode"] == air) | (t["l_shipmode"] == reg_air)
        return mode & (t["l_shipinstruct"] == deliver)

    def disjunct(
        t: Table, brand: int, containers, qty_lo: int, qty_hi: int, size_hi: int
    ) -> np.ndarray:
        in_containers = np.isin(t["p_container"], containers)
        return (
            (t["p_brand"] == brand)
            & in_containers
            & (t["l_quantity"] >= qty_lo)
            & (t["l_quantity"] <= qty_hi)
            & (t["p_size"] >= 1)
            & (t["p_size"] <= size_hi)
        )

    def joined_pred(t: Table) -> np.ndarray:
        return (
            disjunct(t, brand1, containers1, 1, 11, 5)
            | disjunct(t, brand2, containers2, 10, 20, 10)
            | disjunct(t, brand3, containers3, 20, 30, 15)
        )

    return QueryPlan(
        "Q19",
        (
            FilterStep(
                source="lineitem",
                output="lineitem_f",
                predicate=lineitem_pred,
                scan_columns=("l_shipmode", "l_shipinstruct"),
                keep=("l_partkey", "l_quantity"),
                description="shipmode in (AIR, REG AIR), deliver in person",
            ),
            JoinStep(
                build="part",
                probe="lineitem_f",
                build_key="p_partkey",
                probe_key="l_partkey",
                output="pl",
                keep_build=("p_brand", "p_container", "p_size"),
                keep_probe=("l_quantity",),
            ),
            FilterStep(
                source="pl",
                output="pl_f",
                predicate=joined_pred,
                scan_columns=("p_brand", "p_container", "p_size", "l_quantity"),
                keep=("l_quantity",),
                description="three brand/container/quantity disjuncts",
            ),
            CountStep(source="pl_f"),
        ),
    )


TPCH_QUERIES: Dict[str, Callable[[], QueryPlan]] = {
    "Q3": q3_plan,
    "Q10": q10_plan,
    "Q12": q12_plan,
    "Q19": q19_plan,
}


def reference_count(data: TpchData, query: str) -> int:
    """Ground-truth count(*) computed with plain numpy (for tests)."""
    li, orders, cust, part = data.lineitem, data.orders, data.customer, data.part
    if query == "Q3":
        cust_ok = cust["c_mktsegment"] == segment_code("BUILDING")
        ord_ok = orders["o_orderdate"] < _DATE_1995_03_15
        ord_ok &= cust_ok[orders["o_custkey"]]
        li_ok = li["l_shipdate"] > _DATE_1995_03_15
        li_ok &= ord_ok[li["l_orderkey"]]
        return int(li_ok.sum())
    if query == "Q10":
        ord_ok = (orders["o_orderdate"] >= _DATE_1993_10_01) & (
            orders["o_orderdate"] < _DATE_1994_01_01
        )
        li_ok = li["l_returnflag"] == returnflag_code("R")
        li_ok &= ord_ok[li["l_orderkey"]]
        return int(li_ok.sum())
    if query == "Q12":
        mode = (li["l_shipmode"] == shipmode_code("MAIL")) | (
            li["l_shipmode"] == shipmode_code("SHIP")
        )
        late = (li["l_commitdate"] < li["l_receiptdate"]) & (
            li["l_shipdate"] < li["l_commitdate"]
        )
        in_1994 = (li["l_receiptdate"] >= _DATE_1994_01_01) & (
            li["l_receiptdate"] < _DATE_1995_01_01
        )
        return int((mode & late & in_1994).sum())
    if query == "Q19":
        mode = (li["l_shipmode"] == shipmode_code("AIR")) | (
            li["l_shipmode"] == shipmode_code("REG AIR")
        )
        pre = mode & (li["l_shipinstruct"] == shipinstruct_code("DELIVER IN PERSON"))
        brand = part["p_brand"][li["l_partkey"]]
        container = part["p_container"][li["l_partkey"]]
        size = part["p_size"][li["l_partkey"]]
        qty = li["l_quantity"]
        d1 = (
            (brand == 11)
            & np.isin(container, (0, 1, 2, 3))
            & (qty >= 1) & (qty <= 11) & (size >= 1) & (size <= 5)
        )
        d2 = (
            (brand == 22)
            & np.isin(container, (10, 11, 12, 13))
            & (qty >= 10) & (qty <= 20) & (size >= 1) & (size <= 10)
        )
        d3 = (
            (brand == 33)
            & np.isin(container, (20, 21, 22, 23))
            & (qty >= 20) & (qty <= 30) & (size >= 1) & (size <= 15)
        )
        return int((pre & (d1 | d2 | d3)).sum())
    raise PlanError(f"unknown query {query!r}")
