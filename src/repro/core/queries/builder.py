"""Fluent construction of query plans.

The dataclass steps in :mod:`repro.core.queries.plan` are explicit but
verbose; :class:`PlanBuilder` offers the compact form a user exploring
their own workload wants::

    plan = (
        PlanBuilder("my-query")
        .filter("orders", "orders_f",
                predicate=lambda t: t["o_orderdate"] < cutoff,
                scan=("o_orderdate",), keep=("o_orderkey",))
        .join(build="orders_f", probe="lineitem",
              on=("o_orderkey", "l_orderkey"), output="ol")
        .count("ol")
        .build()
    )
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.queries.plan import (
    CountStep,
    FilterStep,
    JoinStep,
    Predicate,
    QueryPlan,
    Step,
)
from repro.errors import PlanError


class PlanBuilder:
    """Accumulates steps and validates the chain on ``build()``."""

    def __init__(self, name: str) -> None:
        if not name:
            raise PlanError("a query plan needs a name")
        self.name = name
        self._steps: List[Step] = []
        self._produced: set = set()
        self._counted = False

    def _require_open(self) -> None:
        if self._counted:
            raise PlanError(
                f"plan {self.name!r} already ends in count(); no further steps"
            )

    def _check_output(self, output: str) -> None:
        if output in self._produced:
            raise PlanError(f"output name {output!r} produced twice")
        self._produced.add(output)

    # -- steps -------------------------------------------------------------

    def filter(
        self,
        source: str,
        output: str,
        *,
        predicate: Predicate,
        scan: Sequence[str],
        keep: Sequence[str],
        description: str = "",
    ) -> "PlanBuilder":
        """Append a materializing selection."""
        self._require_open()
        self._check_output(output)
        self._steps.append(
            FilterStep(
                source=source,
                output=output,
                predicate=predicate,
                scan_columns=tuple(scan),
                keep=tuple(keep),
                description=description,
            )
        )
        return self

    def join(
        self,
        *,
        build: str,
        probe: str,
        on: Tuple[str, str],
        output: str,
        keep_build: Sequence[str] = (),
        keep_probe: Sequence[str] = (),
        description: str = "",
    ) -> "PlanBuilder":
        """Append an equi-join; ``on`` is (build_key, probe_key)."""
        self._require_open()
        self._check_output(output)
        build_key, probe_key = on
        self._steps.append(
            JoinStep(
                build=build,
                probe=probe,
                build_key=build_key,
                probe_key=probe_key,
                output=output,
                keep_build=tuple(keep_build),
                keep_probe=tuple(keep_probe),
                description=description,
            )
        )
        return self

    def count(self, source: Optional[str] = None) -> "PlanBuilder":
        """Append the final count(*); defaults to the last step's output."""
        self._require_open()
        if source is None:
            if not self._steps:
                raise PlanError("count() needs a source or a prior step")
            last = self._steps[-1]
            source = last.output  # type: ignore[union-attr]
        self._steps.append(CountStep(source=source))
        self._counted = True
        return self

    # -- finish --------------------------------------------------------------

    def build(self) -> QueryPlan:
        """Validate and return the plan."""
        if not self._counted:
            raise PlanError(
                f"plan {self.name!r} must end in count() before build()"
            )
        return QueryPlan(self.name, tuple(self._steps))
