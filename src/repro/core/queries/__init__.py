"""Materializing query plans and the TPC-H queries of Sec. 6."""

from repro.core.queries.builder import PlanBuilder
from repro.core.queries.plan import CountStep, FilterStep, JoinStep, QueryPlan
from repro.core.queries.executor import QueryExecutor, QueryResult
from repro.core.queries.tpch_queries import (
    TPCH_QUERIES,
    q3_plan,
    q10_plan,
    q12_plan,
    q19_plan,
    reference_count,
)

__all__ = [
    "PlanBuilder",
    "CountStep",
    "FilterStep",
    "JoinStep",
    "QueryPlan",
    "QueryExecutor",
    "QueryResult",
    "TPCH_QUERIES",
    "q3_plan",
    "q10_plan",
    "q12_plan",
    "q19_plan",
    "reference_count",
]
