"""CrkJoin — the SGXv1-optimized cracking join of Maliszewski et al.

CrkJoin partitions *in place*, one radix bit per pass: two pointers walk
from both ends of the table swapping out-of-order tuples until they meet,
then recurse on both halves.  This avoids random memory access and extra
buffers entirely — exactly right for SGXv1, whose tiny EPC made every
random access a potential page-in/page-out — at the cost of ``log2(P)``
full, branchy read-write passes over both inputs.  On SGXv2, where the EPC
bottleneck is gone, those passes are pure overhead: CrkJoin lands at
~60 M rows/s in Fig. 1/3, 12x slower than RHO and 20x slower than the
SGXv2-optimized RHO.  After partitioning it joins each partition with the
same in-cache hash method as RHO.
"""

from __future__ import annotations

import math

from repro.core.joins.base import JoinAlgorithm, JoinResult
from repro.core.joins.radix import partitioned_match
from repro.core.structures.hashtable import table_bytes_for
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind
from repro.tables.generator import JOIN_TUPLE_BYTES
from repro.tables.table import Table

#: Target partition size: CrkJoin was tuned for SGXv1, where keeping the
#: working set tiny was everything — it cracks far deeper than RHO needs.
_TARGET_PARTITION_BYTES = 32 * 1024

#: Per-tuple cycles of one cracking pass: compare, branch (heavily
#: mispredicted — the bit test is a coin flip), and conditional swap.
#: Calibrated so the full join lands at the ~60 M rows/s of Fig. 3.
_CRACK_COMPUTE = 16.0

#: The cracking loop is branchy but mostly sequential; mild exposure to
#: the enclave reordering restriction (CrkJoin loses little inside SGX).
_CRACK_SENSITIVITY = 0.15

#: In-cache join phases (same constants as RHO's build/probe).
_BUILD_COMPUTE = 5.0
_PROBE_COMPUTE = 5.0
_BUILD_SENSITIVITY = 0.5
_PROBE_SENSITIVITY = 0.15


class CrkJoin(JoinAlgorithm):
    """In-place one-bit-per-pass radix cracking + in-cache hash join."""

    name = "CrkJoin"

    def __init__(self, variant: CodeVariant = CodeVariant.NAIVE, radix_bits=None):
        super().__init__(variant)
        self.radix_bits = radix_bits

    def choose_radix_bits(self, build: Table) -> int:
        """One bit per cracking pass until partitions are cache-sized."""
        if self.radix_bits is not None:
            return self.radix_bits
        partitions = build.logical_bytes / _TARGET_PARTITION_BYTES
        return max(1, math.ceil(math.log2(max(partitions, 2.0))))

    def _crack_pass_profile(
        self, ctx: ExecutionContext, table: Table, pass_no: int, active_threads: int
    ) -> AccessProfile:
        """Per-thread cost of one in-place cracking pass.

        Pass ``k`` splits 2**k independent sub-tables, so at most 2**k
        threads can work: the first passes of CrkJoin are inherently
        under-parallelized, a large part of why it cannot compete on
        SGXv2's many cores.
        """
        locality = ctx.data_locality
        share = table.logical_rows / active_threads
        # Pass k cracks independent sub-tables of 1/2**k of the input: the
        # *active* working set shrinks every pass.  This is CrkJoin's whole
        # point on SGXv1 — after a few bits the sub-table fits the tiny EPC
        # and the remaining passes run without paging.
        pass_working_set = max(
            table.logical_bytes / (1 << pass_no), JOIN_TUPLE_BYTES
        )
        profile = AccessProfile()
        # Each pass streams the whole (sub)table once; roughly half the
        # tuples are swapped, i.e. rewritten in place.
        profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=pass_working_set,
                locality=locality,
                variant=self.variant,
                parallelism=4.0,
                compute_cycles_per_item=_CRACK_COMPUTE,
                table_bytes=4096.0,  # the two cursors' working lines
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=_CRACK_SENSITIVITY,
                label=f"crack-bit-{pass_no}",
            )
        )
        swaps = AccessBatch(
            kind=PatternKind.SEQ_WRITE,
            count=share / 2.0,
            element_bytes=2 * JOIN_TUPLE_BYTES,  # a swap rewrites two tuples
            working_set_bytes=pass_working_set,
            locality=locality,
            variant=CodeVariant.NAIVE,
            label=f"crack-swaps-{pass_no}",
        )
        profile.add(swaps)
        return profile

    def _execute(
        self,
        ctx: ExecutionContext,
        build: Table,
        probe: Table,
        materialize: bool,
    ) -> JoinResult:
        executor = ctx.executor()
        locality = ctx.data_locality
        threads = ctx.threads
        bits = self.choose_radix_bits(build)
        num_partitions = 1 << bits

        # ---- real computation (in-place cracking ends in the same
        # grouping as radix partitioning by the low bits) ------------------
        build_index, hit_mask = partitioned_match(build, probe, num_partitions)
        matches = int(hit_mask.sum())

        # ---- cost: cracking passes (one per radix bit, both inputs);
        # pass k has only 2**k independent sub-ranges to parallelize over.
        for pass_no in range(bits):
            active = min(1 << pass_no, threads)
            pass_profile = self._crack_pass_profile(ctx, build, pass_no, active)
            pass_profile.merge(
                self._crack_pass_profile(ctx, probe, pass_no, active)
            )
            executor.run_phase(f"crack-{pass_no}", [pass_profile] * active)

        # ---- cost: in-cache join per partition (as in RHO) ----------------
        partition_rows = max(1, int(build.logical_rows / num_partitions))
        partition_table_bytes = table_bytes_for(partition_rows)
        build_profile = AccessProfile()
        build_profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=self.split_rows(build.logical_rows, threads),
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=build.logical_bytes,
                locality=locality,
                variant=self.variant,
                parallelism=8.0,
                compute_cycles_per_item=_BUILD_COMPUTE,
                table_bytes=partition_table_bytes,
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=_BUILD_SENSITIVITY,
                label="partition-build",
            )
        )
        probe_profile = AccessProfile()
        probe_profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=self.split_rows(probe.logical_rows, threads),
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=probe.logical_bytes,
                locality=locality,
                variant=self.variant,
                parallelism=8.0,
                compute_cycles_per_item=_PROBE_COMPUTE,
                table_bytes=partition_table_bytes,
                table_locality=locality,
                table_writes=False,
                reorder_sensitivity=_PROBE_SENSITIVITY,
                label="partition-probe",
            )
        )
        output = None
        if materialize:
            output = self.materialize_output(
                ctx,
                build,
                probe,
                build_index,
                hit_mask,
                probe_profile,
                sim_scale=probe.sim_scale,
            )
        executor.run_uniform_phase("build", build_profile)
        executor.run_uniform_phase("join", probe_profile)

        return JoinResult(
            algorithm=self.name,
            setting=ctx.setting.label,
            variant=self.variant,
            threads=threads,
            build_rows=build.logical_rows,
            probe_rows=probe.logical_rows,
            matches=matches,
            matches_logical=matches * probe.sim_scale,
            cycles=executor.total_cycles(),
            phase_cycles=executor.trace.breakdown(),
            output=output,
            match_index=build_index,
        )
