"""Skew-aware working-set estimation for hash-table probes.

The cost model's residency estimate assumes uniform access.  Real probe
streams are often skewed (Zipf-like foreign keys), which concentrates
accesses on few hash-table entries — the hot entries stay cache-resident
and the *effective* working set shrinks.  Inside an enclave this matters
double: cache hits are the one access class SGX never penalizes (Sec. 4.1),
so skew acts as a natural mitigation for the random-access penalty.

:func:`effective_working_set` converts a measured per-entry access
frequency distribution into the uniform-equivalent working-set size the
residency model expects: the size ``ws_eff`` for which a uniform stream
would see the same cache-hit fraction as the skewed stream does with the
hottest entries cached.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def cache_hit_fraction(
    frequencies: np.ndarray,
    entry_bytes: float,
    cache_bytes: float,
    sim_scale: float = 1.0,
) -> float:
    """Share of accesses served by a cache holding the hottest entries.

    ``frequencies[i]`` is how often (physical) entry ``i`` is accessed; an
    LRU-like cache of ``cache_bytes`` retains the most frequently accessed
    entries.  ``sim_scale`` maps physical entries to logical ones.
    """
    if entry_bytes <= 0 or cache_bytes < 0:
        raise ConfigurationError("entry_bytes must be positive, cache >= 0")
    if sim_scale <= 0:
        raise ConfigurationError("sim_scale must be positive")
    frequencies = np.asarray(frequencies, dtype=np.float64)
    total = frequencies.sum()
    if total <= 0:
        return 1.0  # no accesses: everything trivially "hits"
    logical_capacity = cache_bytes / entry_bytes
    physical_capacity = int(logical_capacity / sim_scale)
    if physical_capacity >= len(frequencies):
        return 1.0
    if physical_capacity <= 0:
        return 0.0
    hottest = np.partition(frequencies, -physical_capacity)[-physical_capacity:]
    return float(hottest.sum() / total)


def skew_gain(
    frequencies: np.ndarray,
    entry_bytes: float,
    cache_bytes: float,
    sim_scale: float = 1.0,
    *,
    seed: int = 0,
) -> float:
    """How much better than uniform the stream caches (>= 1.0).

    Small physical samples make the raw hit fraction look skewed even for
    uniform streams (Poisson noise: with ~1 access per entry the "hottest"
    entries are just the lucky ones).  The gain is therefore measured
    against a *simulated uniform baseline with the same sample count*, which
    cancels the bias: a uniform stream scores ~1.0 regardless of scale.
    """
    frequencies = np.asarray(frequencies)
    total = int(frequencies.sum())
    entries = len(frequencies)
    if total == 0 or entries == 0:
        return 1.0
    measured = cache_hit_fraction(frequencies, entry_bytes, cache_bytes, sim_scale)
    rng = np.random.default_rng(seed)
    baseline_counts = np.bincount(
        rng.integers(0, entries, total), minlength=entries
    )
    baseline = cache_hit_fraction(
        baseline_counts, entry_bytes, cache_bytes, sim_scale
    )
    if baseline <= 0:
        return 1.0
    return max(1.0, measured / baseline)


def effective_working_set(
    frequencies: np.ndarray,
    entry_bytes: float,
    cache_bytes: float,
    uniform_ws_bytes: float,
    sim_scale: float = 1.0,
) -> float:
    """Uniform-equivalent working set of a (possibly skewed) access stream.

    For a uniform stream over ``ws`` bytes, a cache of ``C`` bytes serves a
    ``C / ws`` fraction of accesses; inverting that for the skewed stream's
    measured hit fraction gives the size the residency model should price.
    The result is clamped to ``[cache_bytes, uniform_ws_bytes]`` — skew can
    only shrink the effective set, never grow it.
    """
    if uniform_ws_bytes < 0:
        raise ConfigurationError("uniform working set must be non-negative")
    if uniform_ws_bytes <= cache_bytes:
        return uniform_ws_bytes
    hit_fraction = cache_hit_fraction(
        frequencies, entry_bytes, cache_bytes, sim_scale
    )
    if hit_fraction <= 0:
        return uniform_ws_bytes
    ws_eff = cache_bytes / hit_fraction
    return float(min(max(ws_eff, cache_bytes), uniform_ws_bytes))
