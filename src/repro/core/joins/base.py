"""Common join machinery: results, the algorithm interface, materialization.

Join conventions follow the paper (Sec. 4, "Join data"): equi-joins of a
primary-key *build* relation against a foreign-key *probe* relation, both
with <32-bit key, 32-bit payload> tuples; throughput is the sum of the input
cardinalities divided by the join time; results are not materialized unless
requested (materialization is studied separately in Sec. 4.4 / Fig. 11 and
in the full queries of Sec. 6).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import AccessProfile, CodeVariant
from repro.tables.table import Column, Table

#: Bytes of one materialized join output tuple: key + both payloads.
OUTPUT_TUPLE_BYTES = 12


@dataclass
class JoinResult:
    """Outcome of one join execution: correctness data plus simulated time."""

    algorithm: str
    setting: str
    variant: CodeVariant
    threads: int
    build_rows: float
    probe_rows: float
    matches: int
    matches_logical: float
    cycles: float
    phase_cycles: Dict[str, float] = field(default_factory=dict)
    output: Optional[Table] = None
    #: Per probe row, the matching build row (or -1); set by all joins.
    match_index: Optional[np.ndarray] = None

    @property
    def input_rows(self) -> float:
        """Sum of input cardinalities (the paper's throughput numerator)."""
        return self.build_rows + self.probe_rows

    def seconds(self, frequency_hz: float) -> float:
        return self.cycles / frequency_hz

    def throughput_rows_per_s(self, frequency_hz: float) -> float:
        """M rows/s metric of the paper's join figures."""
        seconds = self.seconds(frequency_hz)
        if seconds <= 0:
            raise ConfigurationError("join consumed no simulated time")
        return self.input_rows / seconds


class JoinAlgorithm(abc.ABC):
    """Base class: validates inputs, runs the algorithm, prices the phases."""

    #: Short name used in figures (e.g. "RHO").
    name: str = "join"

    def __init__(self, variant: CodeVariant = CodeVariant.NAIVE) -> None:
        self.variant = variant

    # -- hooks -------------------------------------------------------------

    @abc.abstractmethod
    def _execute(
        self,
        ctx: ExecutionContext,
        build: Table,
        probe: Table,
        materialize: bool,
    ) -> JoinResult:
        """Algorithm-specific execution; returns a complete result."""

    # -- public API ----------------------------------------------------------

    def run(
        self,
        ctx: ExecutionContext,
        build: Table,
        probe: Table,
        *,
        materialize: bool = False,
    ) -> JoinResult:
        """Join ``build`` against ``probe`` under ``ctx``.

        Both tables need ``key``/``payload`` columns.  Input allocation and
        initialization happen *before* timing starts, per the paper's
        measurement methodology (Sec. 3); only the join itself (and, if
        requested, result materialization including any dynamic enclave
        growth) is charged.
        """
        for table, role in ((build, "build"), (probe, "probe")):
            for column in ("key", "payload"):
                if column not in table:
                    raise ConfigurationError(
                        f"{role} table {table.name!r} lacks a {column!r} column"
                    )
        # Inputs are resident (and, for SGX-data-in settings, EPC-backed)
        # before the measured section begins.
        ctx.allocate(f"{self.name}-build-input", int(build.logical_bytes))
        ctx.allocate(f"{self.name}-probe-input", int(probe.logical_bytes))
        return self._execute(ctx, build, probe, materialize)

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def reference_match_count(build: Table, probe: Table) -> int:
        """Ground-truth number of matches (for tests and sanity checks)."""
        build_keys = np.sort(build["key"])
        positions = np.searchsorted(build_keys, probe["key"])
        positions = np.clip(positions, 0, len(build_keys) - 1)
        return int((build_keys[positions] == probe["key"]).sum())

    @staticmethod
    def materialize_output(
        ctx: ExecutionContext,
        build: Table,
        probe: Table,
        build_index: np.ndarray,
        probe_mask: np.ndarray,
        profile: AccessProfile,
        *,
        sim_scale: float,
    ) -> Table:
        """Gather matched tuples into an output table and charge its cost.

        ``build_index[i]`` is the matching build row for probe row ``i``
        (where ``probe_mask`` is set).  The allocation is routed through the
        context so a dynamically-sized enclave pays EDMM per page (Fig. 11);
        the writes themselves are charged to ``profile``.

        ``profile`` is a *per-thread* profile (it is replicated across the
        executor's threads), so both the output writes and the paging costs
        are charged as per-thread shares — threads materialize their own
        output stripes, and enclave page additions happen on whichever
        thread first touches the page.
        """
        matched_probe = np.flatnonzero(probe_mask)
        matched_build = build_index[matched_probe]
        output = Table(
            "join_output",
            [
                Column("key", probe["key"][matched_probe]),
                Column("r_payload", build["payload"][matched_build]),
                Column("s_payload", probe["payload"][matched_probe]),
            ],
            sim_scale=sim_scale,
        )
        logical_matches = len(matched_probe) * sim_scale
        out_bytes = int(logical_matches * OUTPUT_TUPLE_BYTES)
        threads = ctx.threads
        paging = AccessProfile()
        ctx.allocate("join-output", out_bytes, paging)
        # EDMM growth (EAUG by the kernel + EACCEPT inside the enclave)
        # serializes on the enclave's page table: every thread observes the
        # full page-add latency, so the per-thread profile carries the whole
        # count.  Ordinary first touches of pre-committed pages parallelize.
        profile.sync.pages_added_dynamically += paging.sync.pages_added_dynamically
        profile.sync.pages_touched_statically += (
            paging.sync.pages_touched_statically + threads - 1
        ) // threads
        profile.seq_write(
            logical_matches / threads,
            OUTPUT_TUPLE_BYTES,
            ctx.data_locality,
            working_set_bytes=logical_matches * OUTPUT_TUPLE_BYTES,
            label="materialize",
        )
        return output

    @staticmethod
    def split_rows(logical_rows: float, threads: int) -> float:
        """Per-thread share of ``logical_rows`` under even partitioning."""
        if threads < 1:
            raise ConfigurationError("threads must be >= 1")
        return logical_rows / threads
