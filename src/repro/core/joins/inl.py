"""INL — the Index Nested Loop join over an existing B+-tree (Sec. 4, join 4).

For every probe tuple the join descends a pre-built B+-tree index on the
build relation.  The upper tree levels stay cache-resident; the lower
levels cause dependent DRAM reads, so INL is latency-bound and slow in
absolute terms, but — because a pointer descent is inherently serial
already — it loses comparatively little inside the enclave (Fig. 3 shows a
~3x speedup over CrkJoin, the smallest of the non-SGXv1 joins).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.joins.base import JoinAlgorithm, JoinResult
from repro.core.structures.btree import BPlusTree
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind
from repro.tables.generator import JOIN_TUPLE_BYTES
from repro.tables.table import Table

#: Cycles per visited cache-resident level (compare + next-child compute).
_LEVEL_COMPUTE = 9.0
#: Loop-body cycles around each probe lookup.
_PROBE_COMPUTE = 6.0


class IndexNestedLoopJoin(JoinAlgorithm):
    """Per-probe B+-tree lookups against the build side's index."""

    name = "INL"

    def __init__(self, variant: CodeVariant = CodeVariant.NAIVE, fanout: int = 16):
        super().__init__(variant)
        self.fanout = fanout

    def _execute(
        self,
        ctx: ExecutionContext,
        build: Table,
        probe: Table,
        materialize: bool,
    ) -> JoinResult:
        executor = ctx.executor()
        locality = ctx.data_locality
        threads = ctx.threads

        # ---- real computation -------------------------------------------
        # The index exists before the join (the paper's INL uses "an
        # existing B-Tree index"), so building it is not charged.
        tree = BPlusTree(build["key"], build["payload"], self.fanout)
        leaf_positions, hit_mask = tree.lookup(probe["key"])
        matches = int(hit_mask.sum())
        # Map leaf positions back to original build rows via the bulk-load
        # sort order for materialization.
        build_sort_order = np.argsort(build["key"], kind="stable")
        build_index = np.full(len(probe["key"]), -1, dtype=np.int64)
        matched = np.flatnonzero(hit_mask)
        build_index[matched] = build_sort_order[leaf_positions[matched]]

        # ---- cost ---------------------------------------------------------
        # Index footprint scales with the *logical* build side.
        logical_index_bytes = tree.footprint_bytes * max(build.sim_scale, 1.0)
        ctx.allocate("inl-index", int(logical_index_bytes))
        # Levels whose aggregate size fits in (half of) L3 stay hot; deeper
        # levels miss to DRAM on every lookup.
        logical_height = max(
            1, math.ceil(math.log(max(build.logical_rows, 2), self.fanout))
        )
        l3 = ctx.machine.spec.l3.capacity_bytes / 2
        # Level sizes from the leaf upward; a level is hot when it fits in
        # the cache budget together with everything above it.
        level_bytes = [
            build.logical_rows / (self.fanout**depth) * 12.0
            for depth in range(logical_height)
        ]
        cached_levels = 0
        budget = l3
        for size in reversed(level_bytes):  # smallest (root) first
            if size > budget:
                break
            budget -= size
            cached_levels += 1
        dram_levels = logical_height - cached_levels

        probe_share = self.split_rows(probe.logical_rows, threads)
        profile = AccessProfile()
        # Cache-resident part of each descent.
        profile.compute(
            probe_share * (cached_levels * _LEVEL_COMPUTE + _PROBE_COMPUTE),
            label="descent-cached",
        )
        if dram_levels:
            profile.add(
                AccessBatch(
                    kind=PatternKind.DEPENDENT_READ,
                    count=probe_share * dram_levels,
                    element_bytes=64,
                    working_set_bytes=logical_index_bytes,
                    locality=locality,
                    variant=self.variant,
                    parallelism=1.0,
                    compute_cycles_per_item=_LEVEL_COMPUTE,
                    label="descent-dram",
                )
            )
        # Streaming read of the probe input.
        profile.seq_read(
            probe_share, JOIN_TUPLE_BYTES, locality,
            working_set_bytes=probe.logical_bytes, label="probe-scan"
        )
        output = None
        if materialize:
            output = self.materialize_output(
                ctx,
                build,
                probe,
                build_index,
                hit_mask,
                profile,
                sim_scale=probe.sim_scale,
            )
        executor.run_uniform_phase("probe", profile)

        return JoinResult(
            algorithm=self.name,
            setting=ctx.setting.label,
            variant=self.variant,
            threads=threads,
            build_rows=build.logical_rows,
            probe_rows=probe.logical_rows,
            matches=matches,
            matches_logical=matches * probe.sim_scale,
            cycles=executor.total_cycles(),
            phase_cycles=executor.trace.breakdown(),
            output=output,
            match_index=build_index,
        )
