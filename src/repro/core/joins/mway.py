"""MWAY — the multi-way sort-merge join of Kim et al. (Sec. 4, join 3).

Both inputs are sorted (cache-sized runs, then one multi-way merge using
bitonic merge networks) and joined in a single co-scan.  The access pattern
is almost entirely sequential, so MWAY shows only a small in-enclave
reduction in Fig. 3 — the price it pays instead is the high computational
cost of sorting, which keeps its absolute throughput below the hash joins.
"""

from __future__ import annotations

import numpy as np

from repro.core.joins.base import JoinAlgorithm, JoinResult
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind
from repro.tables.generator import JOIN_TUPLE_BYTES
from repro.tables.table import Table

#: Per-tuple cycles of the run-sort stage (AVX bitonic sorting networks).
_SORT_RUN_COMPUTE = 52.0
#: Per-tuple cycles of the multi-way merge stage.
_MERGE_COMPUTE = 34.0
#: Per-tuple cycles of the final merge-join co-scan.
_JOIN_COMPUTE = 12.0

#: Sorting networks and the merge loop have abundant ILP; the enclave
#: reordering restriction barely bites (MWAY is nearly unaffected in
#: Fig. 3).
_SORT_SENSITIVITY = 0.1
_JOIN_SENSITIVITY = 0.1


class SortMergeJoin(JoinAlgorithm):
    """Sort both inputs, then merge-join them in one pass."""

    name = "MWAY"

    def _sort_profile(self, ctx: ExecutionContext, table: Table) -> AccessProfile:
        """Per-thread cost of sorting one input: run sort + one merge pass."""
        locality = ctx.data_locality
        share = self.split_rows(table.logical_rows, ctx.threads)
        profile = AccessProfile()
        # Run generation: stream in, sort in cache, stream out.
        profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=table.logical_bytes,
                locality=locality,
                variant=CodeVariant.SIMD,
                parallelism=8.0,
                compute_cycles_per_item=_SORT_RUN_COMPUTE,
                table_bytes=256 * 1024.0,  # the in-cache run being sorted
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=_SORT_SENSITIVITY,
                label="sort-runs",
            )
        )
        profile.seq_write(share, JOIN_TUPLE_BYTES, locality,
                          working_set_bytes=table.logical_bytes,
                          label="runs-out")
        # Multi-way merge: stream all runs in, merged output out.
        profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=table.logical_bytes,
                locality=locality,
                variant=CodeVariant.SIMD,
                parallelism=8.0,
                compute_cycles_per_item=_MERGE_COMPUTE,
                table_bytes=512 * 1024.0,  # merge tree state
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=_SORT_SENSITIVITY,
                label="multiway-merge",
            )
        )
        profile.seq_write(share, JOIN_TUPLE_BYTES, locality,
                          working_set_bytes=table.logical_bytes,
                          label="merge-out")
        return profile

    def _execute(
        self,
        ctx: ExecutionContext,
        build: Table,
        probe: Table,
        materialize: bool,
    ) -> JoinResult:
        executor = ctx.executor()
        locality = ctx.data_locality
        threads = ctx.threads

        # ---- real computation -------------------------------------------
        build_order = np.argsort(build["key"], kind="stable")
        probe_order = np.argsort(probe["key"], kind="stable")
        sorted_build_keys = build["key"][build_order]
        sorted_probe_keys = probe["key"][probe_order]
        positions = np.searchsorted(sorted_build_keys, sorted_probe_keys)
        positions = np.clip(positions, 0, len(sorted_build_keys) - 1)
        hits_sorted = sorted_build_keys[positions] == sorted_probe_keys
        # Map hits back to original probe row order for materialization.
        build_index = np.full(len(probe["key"]), -1, dtype=np.int64)
        matched_sorted = np.flatnonzero(hits_sorted)
        build_index[probe_order[matched_sorted]] = build_order[
            positions[matched_sorted]
        ]
        hit_mask = build_index >= 0
        matches = int(hits_sorted.sum())

        # Sort scratch: out-of-place runs + merge output for both inputs.
        ctx.allocate(
            "mway-scratch", int(build.logical_bytes + probe.logical_bytes)
        )

        # ---- cost ---------------------------------------------------------
        executor.run_uniform_phase("sort-build", self._sort_profile(ctx, build))
        executor.run_uniform_phase("sort-probe", self._sort_profile(ctx, probe))

        join_profile = AccessProfile()
        join_share = self.split_rows(
            build.logical_rows + probe.logical_rows, threads
        )
        join_profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=join_share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=build.logical_bytes + probe.logical_bytes,
                locality=locality,
                variant=CodeVariant.SIMD,
                parallelism=8.0,
                compute_cycles_per_item=_JOIN_COMPUTE,
                table_bytes=64 * 1024.0,  # co-scan cursors and compare state
                table_locality=locality,
                table_writes=False,
                reorder_sensitivity=_JOIN_SENSITIVITY,
                label="merge-join",
            )
        )
        output = None
        if materialize:
            output = self.materialize_output(
                ctx,
                build,
                probe,
                build_index,
                hit_mask,
                join_profile,
                sim_scale=probe.sim_scale,
            )
        executor.run_uniform_phase("join", join_profile)

        return JoinResult(
            algorithm=self.name,
            setting=ctx.setting.label,
            variant=self.variant,
            threads=threads,
            build_rows=build.logical_rows,
            probe_rows=probe.logical_rows,
            matches=matches,
            matches_logical=matches * probe.sim_scale,
            cycles=executor.total_cycles(),
            phase_cycles=executor.trace.breakdown(),
            output=output,
            match_index=build_index,
        )
