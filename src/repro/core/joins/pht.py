"""PHT — the Parallel Hash Table join of Blanas et al. (Sec. 4, join 1).

Threads build one shared bucket-chaining hash table over the smaller input
(latching buckets for parallel inserts), then probe it with partitions of
the larger input.  The table for the paper's 100 MB build side is ~256 MB,
far beyond L3, so both phases are dominated by random DRAM access — which
is exactly why PHT shows the largest in-enclave slowdown in Fig. 3 and why
the build phase degrades hardest (Sec. 4.1 / Fig. 4).
"""

from __future__ import annotations

import numpy as np

from repro.core.joins.base import JoinAlgorithm, JoinResult
from repro.core.joins.skew import skew_gain
from repro.core.structures.hashtable import ChainedHashTable, table_bytes_for
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind
from repro.tables.generator import JOIN_TUPLE_BYTES
from repro.tables.table import Table

#: The insert loop is a partially dependent chain (hash, latch, link write):
#: moderate memory-level parallelism even on the plain CPU.
_BUILD_PARALLELISM = 6.0
_PROBE_PARALLELISM = 6.0

#: Cycles of pure loop body work per tuple, including the (uncontended)
#: bucket latch on the build side.
_BUILD_COMPUTE = 10.0
_PROBE_COMPUTE = 6.0

#: The insert/probe loop bodies carry enough ILP that the enclave-mode
#: restriction barely slows the instructions themselves — Fig. 4 shows 95 %
#: relative throughput while the table is cache-resident.  What the
#: restriction does destroy is the overlapping of DRAM misses, hence the
#: full mlp sensitivity: once the table exceeds cache, the naive build runs
#: its (penalized) random writes nearly serially.  Manual unrolling
#: (Sec. 4.2) restores the overlap, the +94 % of Fig. 8.
_BUILD_REORDER_SENSITIVITY = 0.02
_PROBE_REORDER_SENSITIVITY = 0.02
_BUILD_MLP_SENSITIVITY = 1.0
_PROBE_MLP_SENSITIVITY = 0.55


class ParallelHashJoin(JoinAlgorithm):
    """Shared-table hash join (no partitioning)."""

    name = "PHT"

    def __init__(
        self, variant: CodeVariant = CodeVariant.NAIVE, load_factor: float = 1.0
    ) -> None:
        super().__init__(variant)
        self.load_factor = load_factor

    def _execute(
        self,
        ctx: ExecutionContext,
        build: Table,
        probe: Table,
        materialize: bool,
    ) -> JoinResult:
        executor = ctx.executor()
        locality = ctx.data_locality
        threads = ctx.threads

        # ---- real computation ------------------------------------------
        table = ChainedHashTable(build["key"], build["payload"], self.load_factor)
        build_index, hit_mask = table.probe_first(probe["key"])
        matches = int(hit_mask.sum())

        # ---- cost: build phase ------------------------------------------
        logical_table_bytes = table_bytes_for(
            int(build.logical_rows), self.load_factor
        )
        ctx.allocate("pht-hash-table", logical_table_bytes)
        build_share = self.split_rows(build.logical_rows, threads)
        build_profile = AccessProfile()
        build_profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=build_share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=build.logical_bytes,
                locality=locality,
                variant=self.variant,
                parallelism=_BUILD_PARALLELISM,
                compute_cycles_per_item=_BUILD_COMPUTE,
                table_bytes=logical_table_bytes,
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=_BUILD_REORDER_SENSITIVITY,
                mlp_sensitivity=_BUILD_MLP_SENSITIVITY,
                label="build-insert",
            )
        )
        executor.run_uniform_phase("build", build_profile)

        # ---- cost: probe phase -------------------------------------------
        # Skewed probe streams concentrate on few hash-table entries; the
        # hot set stays cached, shrinking the effective working set (and,
        # in the enclave, the SGX random-access penalty with it).  The
        # estimate comes from the *measured* per-entry access frequencies;
        # near-uniform streams keep the nominal size (the estimator is
        # noisy at small physical scale, so mild shrinkage is ignored).
        frequencies = np.bincount(
            build_index[hit_mask].astype(np.int64), minlength=build.num_rows
        )
        entry_bytes = logical_table_bytes / max(build.logical_rows, 1.0)
        gain = skew_gain(
            frequencies,
            entry_bytes,
            ctx.machine.spec.l3.capacity_bytes,
            sim_scale=build.sim_scale,
        )
        probe_table_ws = logical_table_bytes
        if gain > 1.5:
            probe_table_ws = max(
                ctx.machine.spec.l3.capacity_bytes,
                logical_table_bytes / gain,
            )
        probe_share = self.split_rows(probe.logical_rows, threads)
        probe_profile = AccessProfile()
        probe_profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=probe_share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=probe.logical_bytes,
                locality=locality,
                variant=self.variant,
                parallelism=_PROBE_PARALLELISM,
                compute_cycles_per_item=_PROBE_COMPUTE,
                table_bytes=probe_table_ws,
                table_locality=locality,
                table_writes=False,
                reorder_sensitivity=_PROBE_REORDER_SENSITIVITY,
                mlp_sensitivity=_PROBE_MLP_SENSITIVITY,
                label="probe",
            )
        )
        output = None
        if materialize:
            output = self.materialize_output(
                ctx,
                build,
                probe,
                build_index,
                hit_mask,
                probe_profile,
                sim_scale=probe.sim_scale,
            )
        executor.run_uniform_phase("probe", probe_profile)

        breakdown = executor.trace.breakdown()
        return JoinResult(
            algorithm=self.name,
            setting=ctx.setting.label,
            variant=self.variant,
            threads=threads,
            build_rows=build.logical_rows,
            probe_rows=probe.logical_rows,
            matches=matches,
            matches_logical=matches * probe.sim_scale,
            cycles=executor.total_cycles(),
            phase_cycles=breakdown,
            output=output,
            match_index=build_index,
        )
