"""The five join algorithms of the paper's benchmark suite (Sec. 4)."""

from repro.core.joins.base import JoinAlgorithm, JoinResult
from repro.core.joins.pht import ParallelHashJoin
from repro.core.joins.radix import RadixJoin
from repro.core.joins.mway import SortMergeJoin
from repro.core.joins.inl import IndexNestedLoopJoin
from repro.core.joins.crkjoin import CrkJoin

__all__ = [
    "JoinAlgorithm",
    "JoinResult",
    "ParallelHashJoin",
    "RadixJoin",
    "SortMergeJoin",
    "IndexNestedLoopJoin",
    "CrkJoin",
]

#: The algorithms of the Fig. 3 overview, in the paper's order.
ALL_JOINS = (CrkJoin, ParallelHashJoin, RadixJoin, SortMergeJoin, IndexNestedLoopJoin)
