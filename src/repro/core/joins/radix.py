"""RHO — the Radix Hash Optimized join (Sec. 4, join 2).

Both inputs are partitioned by the least-significant key bits in two
parallel passes (histogram + scatter per pass) until each partition fits in
cache; partitions are then joined with the optimized bucket-chain hash
table.  Cache-sized partitions make the build/probe phases cache-resident,
which is why RHO tops Fig. 3 — and why its remaining in-enclave overhead
comes from the *loop-execution* effect of Sec. 4.2 (histogram creation up
to 4x slower) rather than from memory encryption.  The ``variant``
parameter selects the naive loops (Listing 1) or the manually
unrolled-and-reordered ones (Listing 2), the paper's headline optimization.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.core.joins.base import JoinAlgorithm, JoinResult
from repro.core.structures.hashtable import ChainedHashTable, table_bytes_for
from repro.enclave.sync import LockKind, record_lock_ops
from repro.exec.queue import TaskQueueModel
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind
from repro.tables.generator import JOIN_TUPLE_BYTES
from repro.tables.table import Table

#: Target logical partition size: half the private L2, leaving room for the
#: partition's hash table next to its data.
_TARGET_PARTITION_BYTES = 640 * 1024

#: Per-tuple loop-body cycles (index computation, cursor bookkeeping, ...).
_HIST_COMPUTE = 1.3
_COPY_COMPUTE = 2.5
_BUILD_COMPUTE = 5.0
_PROBE_COMPUTE = 5.0

#: Exposure of each phase to the enclave reordering restriction, shaped to
#: the Fig. 6 breakdown: histograms suffer the full effect, the scatter and
#: build loops roughly half, the probe loop barely.
_HIST_SENSITIVITY = 1.0
_COPY_SENSITIVITY = 0.55
_BUILD_SENSITIVITY = 0.5
_PROBE_SENSITIVITY = 0.15

#: Modelled bytes of scatter state per partition during a copy pass (write
#: cursor plus one cache line of write-combining buffer).
_SCATTER_STATE_BYTES = 256


def radix_partition(
    keys: np.ndarray, num_partitions: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Group rows by their low key bits.

    Returns ``(order, offsets)``: ``order`` permutes rows into partition
    order and ``offsets[p]:offsets[p+1]`` bounds partition ``p``.  The
    grouping is computed exactly as the C code does — partition id =
    ``key & (P - 1)`` — with the physical reordering done by one stable
    sort (the result of the two radix passes is identical).
    """
    mask = num_partitions - 1
    pids = np.asarray(keys).astype(np.int64) & mask
    order = np.argsort(pids, kind="stable")
    counts = np.bincount(pids, minlength=num_partitions)
    offsets = np.zeros(num_partitions + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return order, offsets


def partitioned_match(
    build: Table,
    probe: Table,
    num_partitions: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Join co-partitioned inputs partition by partition.

    Returns ``(build_index, hit_mask)`` aligned to the probe table's
    original row order: ``build_index[i]`` is the matching build row of
    probe row ``i`` (foreign-key joins have at most one).  Shared by RHO
    and CrkJoin, which use the same in-cache join method (Sec. 4).
    """
    r_keys, r_payloads = build["key"], build["payload"]
    s_keys = probe["key"]
    if num_partitions > 4096 or num_partitions >= len(r_keys):
        # Degenerate fan-outs (tiny partitions, e.g. the Fig. 10 contention
        # experiment) would spend all wall-clock time in the Python loop
        # below; one global hash join produces the identical result.
        table = ChainedHashTable(r_keys, r_payloads)
        index, _hits = table.probe_first(s_keys)
        return index, index >= 0
    r_order, r_offsets = radix_partition(build["key"], num_partitions)
    s_order, s_offsets = radix_partition(probe["key"], num_partitions)
    build_index = np.full(len(s_keys), -1, dtype=np.int64)
    for p in range(num_partitions):
        r_lo, r_hi = r_offsets[p], r_offsets[p + 1]
        s_lo, s_hi = s_offsets[p], s_offsets[p + 1]
        if r_hi == r_lo or s_hi == s_lo:
            continue
        r_rows = r_order[r_lo:r_hi]
        s_rows = s_order[s_lo:s_hi]
        table = ChainedHashTable(r_keys[r_rows], r_payloads[r_rows])
        local_index, hits = table.probe_first(s_keys[s_rows])
        matched = s_rows[hits]
        build_index[matched] = r_rows[local_index[hits]]
    return build_index, build_index >= 0


class RadixJoin(JoinAlgorithm):
    """Two-pass parallel radix join with in-cache hash join per partition."""

    name = "RHO"

    def __init__(
        self,
        variant: CodeVariant = CodeVariant.NAIVE,
        *,
        radix_bits: Optional[int] = None,
        queue_kind: LockKind = LockKind.LOCK_FREE,
    ) -> None:
        super().__init__(variant)
        self.radix_bits = radix_bits
        self.queue_kind = queue_kind

    def choose_radix_bits(self, build: Table) -> int:
        """Bits so each logical build partition fits the cache target."""
        if self.radix_bits is not None:
            return self.radix_bits
        partitions = build.logical_bytes / _TARGET_PARTITION_BYTES
        return max(1, math.ceil(math.log2(max(partitions, 2.0))))

    # ------------------------------------------------------------------

    def _pass_profiles(
        self,
        ctx: ExecutionContext,
        table: Table,
        bits: int,
    ) -> Tuple[AccessProfile, AccessProfile]:
        """(histogram, scatter) per-thread profiles for one partition pass."""
        locality = ctx.data_locality
        share = self.split_rows(table.logical_rows, ctx.threads)
        hist = AccessProfile()
        hist.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=table.logical_bytes,
                locality=locality,
                variant=self.variant,
                parallelism=8.0,
                compute_cycles_per_item=_HIST_COMPUTE,
                table_bytes=max(1.0, (1 << bits) * 4.0),
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=_HIST_SENSITIVITY,
                label="histogram",
            )
        )
        copy = AccessProfile()
        copy.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=table.logical_bytes,
                locality=locality,
                variant=self.variant,
                parallelism=8.0,
                compute_cycles_per_item=_COPY_COMPUTE,
                table_bytes=max(1.0, (1 << bits) * _SCATTER_STATE_BYTES),
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=_COPY_SENSITIVITY,
                label="scatter-state",
            )
        )
        # The scatter output itself goes through streaming (non-temporal)
        # stores in every code variant; the unroll variant only changes the
        # loop body and the flush overlap below.
        copy.seq_write(
            share,
            JOIN_TUPLE_BYTES,
            locality,
            variant=CodeVariant.SIMD,
            working_set_bytes=table.logical_bytes,
            label="scatter-out",
        )
        # Every filled write-combining buffer flushes one cache line to its
        # partition's cursor — sequential per partition but scattered across
        # the whole output region, so the flushes pay the random-write
        # penalty of Sec. 4.1 (the paper attributes the optimized join's
        # remaining gap to exactly this).
        copy.add(
            AccessBatch(
                kind=PatternKind.RANDOM_WRITE,
                count=share * JOIN_TUPLE_BYTES / 64.0,
                element_bytes=64,
                working_set_bytes=table.logical_bytes,
                locality=locality,
                variant=self.variant,
                parallelism=16.0,
                compute_cycles_per_item=0.0,
                label="scatter-flush",
            )
        )
        return hist, copy

    def _execute(
        self,
        ctx: ExecutionContext,
        build: Table,
        probe: Table,
        materialize: bool,
    ) -> JoinResult:
        executor = ctx.executor()
        locality = ctx.data_locality
        threads = ctx.threads
        total_bits = self.choose_radix_bits(build)
        bits_pass1 = (total_bits + 1) // 2
        bits_pass2 = total_bits - bits_pass1
        num_partitions = 1 << total_bits

        # ---- real computation -------------------------------------------
        build_index, hit_mask = partitioned_match(build, probe, num_partitions)
        matches = int(hit_mask.sum())

        # Scratch space for the out-of-place partition passes (pre-sized,
        # per the paper's recommendation to avoid dynamic enclave growth).
        scratch_bytes = int(build.logical_bytes + probe.logical_bytes)
        ctx.allocate("rho-scratch", scratch_bytes)

        # ---- cost: partition passes --------------------------------------
        pass_bits = [bits_pass1] + ([bits_pass2] if bits_pass2 > 0 else [])
        for pass_no, bits in enumerate(pass_bits, start=1):
            hist_r, copy_r = self._pass_profiles(ctx, build, bits)
            hist_s, copy_s = self._pass_profiles(ctx, probe, bits)
            hist_r.merge(hist_s)
            copy_r.merge(copy_s)
            executor.run_uniform_phase(f"hist{pass_no}", hist_r)
            executor.run_uniform_phase(f"copy{pass_no}", copy_r)

        # ---- cost: per-partition build ------------------------------------
        build_share = self.split_rows(build.logical_rows, threads)
        probe_share = self.split_rows(probe.logical_rows, threads)
        partition_rows = max(1, int(build.logical_rows / num_partitions))
        partition_table_bytes = table_bytes_for(partition_rows)
        build_profile = AccessProfile()
        build_profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=build_share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=build.logical_bytes,
                locality=locality,
                variant=self.variant,
                parallelism=8.0,
                compute_cycles_per_item=_BUILD_COMPUTE,
                table_bytes=partition_table_bytes,
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=_BUILD_SENSITIVITY,
                label="partition-build",
            )
        )

        # ---- cost: per-partition probe ------------------------------------
        probe_profile = AccessProfile()
        probe_profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=probe_share,
                element_bytes=JOIN_TUPLE_BYTES,
                working_set_bytes=probe.logical_bytes,
                locality=locality,
                variant=self.variant,
                parallelism=8.0,
                compute_cycles_per_item=_PROBE_COMPUTE,
                table_bytes=partition_table_bytes,
                table_locality=locality,
                table_writes=False,
                reorder_sensitivity=_PROBE_SENSITIVITY,
                label="partition-probe",
            )
        )

        # ---- cost: task-queue traffic --------------------------------------
        # One task per partition in the build/join stage; granularity sets
        # the contention (Fig. 10 forces tiny partitions to stress this).
        per_task_rows = (build.logical_rows + probe.logical_rows) / num_partitions
        task_cycles = per_task_rows * (_BUILD_COMPUTE + _PROBE_COMPUTE)
        queue = TaskQueueModel(self.queue_kind, ctx.machine.params)
        usage = queue.resolve(
            tasks=num_partitions,
            threads=threads,
            task_cycles=task_cycles,
            enclave_mode=ctx.setting.enclave_mode,
        )
        record_lock_ops(
            probe_profile,
            self.queue_kind,
            usage.operations_per_thread,
            usage.contention_ratio,
        )

        output = None
        if materialize:
            output = self.materialize_output(
                ctx,
                build,
                probe,
                build_index,
                hit_mask,
                probe_profile,
                sim_scale=probe.sim_scale,
            )
        executor.run_uniform_phase("build", build_profile)
        executor.run_uniform_phase("join", probe_profile)

        return JoinResult(
            algorithm=self.name,
            setting=ctx.setting.label,
            variant=self.variant,
            threads=threads,
            build_rows=build.logical_rows,
            probe_rows=probe.logical_rows,
            matches=matches,
            matches_logical=matches * probe.sim_scale,
            cycles=executor.total_cycles(),
            phase_cycles=executor.trace.breakdown(),
            output=output,
            match_index=build_index,
        )
