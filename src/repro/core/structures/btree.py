"""A cache-line-conscious B+-tree (the index behind the INL join).

Nodes hold up to ``fanout`` keys; inner levels store separator keys and the
leaf level stores (key, payload).  The tree is bulk-loaded from sorted data
— exactly how a database would maintain the "existing B-Tree index" the
paper's Index Nested Loop join assumes — and lookups descend one level at a
time.  All levels are numpy arrays, so batched lookups are vectorized while
remaining semantically level-by-level descents.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Keys per node: 16 x 4-byte keys fill one cache line, the layout the
#: paper's hardware-conscious baselines use.
DEFAULT_FANOUT = 16

#: Modelled bytes per key slot (key + child pointer / payload).
SLOT_BYTES = 12


class BPlusTree:
    """Bulk-loaded B+-tree over unique keys with vectorized lookups."""

    def __init__(self, keys: np.ndarray, payloads: np.ndarray, fanout: int = DEFAULT_FANOUT):
        if fanout < 2:
            raise ConfigurationError("fanout must be at least 2")
        keys = np.asarray(keys)
        payloads = np.asarray(payloads)
        if len(keys) != len(payloads):
            raise ConfigurationError("keys and payloads must have equal length")
        order = np.argsort(keys, kind="stable")
        self.leaf_keys = keys[order]
        self.leaf_payloads = payloads[order]
        if len(self.leaf_keys) > 1 and (np.diff(self.leaf_keys) == 0).any():
            raise ConfigurationError("B+-tree requires unique keys")
        self.fanout = fanout
        #: Inner levels, root first; each is the array of *first keys* of
        #: the child groups of the level below.
        self.inner_levels: List[np.ndarray] = []
        level = self.leaf_keys
        while len(level) > fanout:
            level = level[::fanout]
            self.inner_levels.append(level)
        self.inner_levels.reverse()

    # -- geometry ---------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of levels including the leaf level."""
        return len(self.inner_levels) + 1

    @property
    def num_keys(self) -> int:
        return len(self.leaf_keys)

    @property
    def footprint_bytes(self) -> int:
        """Modelled index size in the C layout."""
        total = len(self.leaf_keys)
        for level in self.inner_levels:
            total += len(level)
        return total * SLOT_BYTES

    # -- lookups ------------------------------------------------------------

    def lookup(self, probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Positions and hit mask for a batch of keys.

        Descends level by level: at each inner level the child group is
        narrowed with a (vectorized) binary search within the current
        group's slots, mirroring a pointer descent.  Returns leaf positions
        (into the bulk-loaded order) and a boolean hit mask.
        """
        probe_keys = np.asarray(probe_keys)
        if self.num_keys == 0:
            return (
                np.full(len(probe_keys), -1, dtype=np.int64),
                np.zeros(len(probe_keys), dtype=bool),
            )
        # Each inner level i narrows the candidate group; because level i
        # holds every fanout-th key of level i+1, a searchsorted on the
        # whole level equals the stepwise descent but stays vectorized.
        positions = np.searchsorted(self.leaf_keys, probe_keys, side="left")
        positions = np.clip(positions, 0, self.num_keys - 1)
        hits = self.leaf_keys[positions] == probe_keys
        positions = np.where(hits, positions, -1)
        return positions, hits

    def payloads_for(self, positions: np.ndarray) -> np.ndarray:
        """Payloads at previously looked-up positions (positions >= 0)."""
        if (np.asarray(positions) < 0).any():
            raise ConfigurationError("cannot fetch payloads for missed lookups")
        return self.leaf_payloads[positions]

    def cache_resident_levels(self, cache_bytes: float) -> int:
        """How many top levels fit in a cache of ``cache_bytes``.

        The INL cost profile uses this: upper levels are hot and hit in
        cache, only the lowest levels cause DRAM accesses.
        """
        remaining = cache_bytes
        resident = 0
        for level in self.inner_levels:
            size = len(level) * SLOT_BYTES
            if size > remaining:
                return resident
            remaining -= size
            resident += 1
        leaf_size = self.num_keys * SLOT_BYTES
        if leaf_size <= remaining:
            resident += 1
        return resident
