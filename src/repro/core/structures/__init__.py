"""In-memory index structures the join operators build on."""

from repro.core.structures.hashtable import ChainedHashTable
from repro.core.structures.btree import BPlusTree

__all__ = ["ChainedHashTable", "BPlusTree"]
