"""Bucket-chaining hash table (the PHT/RHO hash table of Blanas et al.).

The table is the classical design the paper's joins use: an array of bucket
heads plus per-tuple chain links.  Construction and probing are vectorized
over numpy, but semantically identical to the pointer-chasing C version:
insertion prepends to the bucket's chain under a per-bucket latch, probing
walks the chain comparing keys.

The multiplicative hash is Knuth's: ``(key * 2654435761) >> shift`` masked
to the bucket count, matching the radix-style hashing of the paper's code.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

_KNUTH_MULTIPLIER = np.uint64(2654435761)

#: Bytes of one hash-table entry in the modelled C layout: key (4), payload
#: (4), chain link (8).
ENTRY_BYTES = 16
#: Bytes of one bucket head pointer.
BUCKET_BYTES = 8


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (>= 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def table_bytes_for(num_tuples: int, load_factor: float = 1.0) -> int:
    """Modelled memory footprint of a chained hash table over ``num_tuples``.

    With the default load factor 1 and the 100 MB build table of the paper
    (12.5 M tuples) this yields ~256 MB — the size Sec. 4.1 quotes for the
    join benchmark's hash table.
    """
    if num_tuples < 0:
        raise ConfigurationError("num_tuples must be non-negative")
    buckets = next_power_of_two(max(1, int(num_tuples / load_factor)))
    return buckets * BUCKET_BYTES + num_tuples * ENTRY_BYTES


class ChainedHashTable:
    """A latch-per-bucket chained hash table over (key, payload) arrays."""

    def __init__(self, keys: np.ndarray, payloads: np.ndarray, load_factor: float = 1.0):
        if len(keys) != len(payloads):
            raise ConfigurationError("keys and payloads must have equal length")
        if load_factor <= 0:
            raise ConfigurationError("load factor must be positive")
        self.keys = np.asarray(keys)
        self.payloads = np.asarray(payloads)
        n = len(self.keys)
        self.num_buckets = next_power_of_two(max(1, int(n / load_factor)))
        self._mask = np.uint64(self.num_buckets - 1)
        self.heads = np.full(self.num_buckets, -1, dtype=np.int64)
        self.links = np.full(n, -1, dtype=np.int64)
        if n:
            self._build()

    # -- construction ----------------------------------------------------

    def _hash(self, keys: np.ndarray) -> np.ndarray:
        hashed = keys.astype(np.uint64) * _KNUTH_MULTIPLIER
        return (hashed & self._mask).astype(np.int64)

    def _build(self) -> None:
        """Vectorized equivalent of chained insertion.

        Sequential insertion prepends each tuple to its bucket, so after
        inserting indexes 0..n-1 the chain of a bucket lists its members in
        *descending* index order.  We reproduce exactly that linkage.
        """
        buckets = self._hash(self.keys)
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        # Within one bucket run (ascending index order because the sort is
        # stable), element i is pointed to by element i+1 — the later
        # insertion prepends and links to the earlier one.
        same_bucket = sorted_buckets[1:] == sorted_buckets[:-1]
        self.links[order[1:][same_bucket]] = order[:-1][same_bucket]
        # The head of each bucket is its highest index = last of the run.
        run_ends = np.flatnonzero(
            np.r_[sorted_buckets[1:] != sorted_buckets[:-1], True]
        )
        self.heads[sorted_buckets[run_ends]] = order[run_ends]

    # -- probing ----------------------------------------------------------

    @property
    def max_chain_length(self) -> int:
        """Longest bucket chain (probe cost bound)."""
        if len(self.keys) == 0:
            return 0
        buckets = self._hash(self.keys)
        return int(np.bincount(buckets, minlength=self.num_buckets).max())

    @property
    def footprint_bytes(self) -> int:
        """Modelled memory footprint in the C layout."""
        return self.num_buckets * BUCKET_BYTES + len(self.keys) * ENTRY_BYTES

    def probe_count(self, probe_keys: np.ndarray) -> np.ndarray:
        """Number of matches for each probe key (vectorized chain walk)."""
        probe_keys = np.asarray(probe_keys)
        counts = np.zeros(len(probe_keys), dtype=np.int64)
        cursor = self.heads[self._hash(probe_keys)]
        while True:
            active = cursor >= 0
            if not active.any():
                break
            idx = cursor[active]
            counts[active] += self.keys[idx] == probe_keys[active]
            cursor = cursor.copy()
            cursor[active] = self.links[idx]
        return counts

    def probe_first(self, probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """First matching build index per probe key (or -1), plus a hit mask.

        For the paper's foreign-key joins build keys are unique, so the
        first match is the only match.
        """
        probe_keys = np.asarray(probe_keys)
        result = np.full(len(probe_keys), -1, dtype=np.int64)
        cursor = self.heads[self._hash(probe_keys)]
        unresolved = cursor >= 0
        while unresolved.any():
            idx = cursor[unresolved]
            hit = self.keys[idx] == probe_keys[unresolved]
            targets = np.flatnonzero(unresolved)
            result[targets[hit]] = idx[hit]
            advance = targets[~hit]
            cursor[advance] = self.links[cursor[advance]]
            unresolved = np.zeros_like(unresolved)
            unresolved[advance] = cursor[advance] >= 0
        return result, result >= 0
