"""Random-write micro-benchmark (Sec. 4.1, Fig. 5 right).

The paper writes one billion 8-byte integers to positions produced by a
linear congruential generator and varies the array size.  We implement the
same LCG (Numerical Recipes constants) — it generates addresses for the
physically executed writes — and price the logical write count against the
cost model.  Inside an enclave, random DRAM writes pay read-for-ownership
plus encrypt-on-evict: 2x latency at 256 MB, nearly 3x at 8 GB.
"""

from __future__ import annotations

import numpy as np

from repro.core.micro.pointer_chase import MicroResult
from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_MASK64 = (1 << 64) - 1

#: Bytes per written element.
ELEMENT_BYTES = 8


class Lcg:
    """The 64-bit linear congruential generator of the paper's benchmark."""

    def __init__(self, seed: int = 88172645463325252) -> None:
        self.state = seed & _MASK64

    def next(self) -> int:
        """Advance one step and return the new state."""
        self.state = (_LCG_A * self.state + _LCG_C) & _MASK64
        return self.state

    def batch(self, count: int) -> np.ndarray:
        """``count`` successive states as a uint64 array.

        Uses the closed form x_{n+k} = a^k x_n + c (a^k - 1)/(a - 1), all
        mod 2^64, evaluated with wrapping uint64 arithmetic so the whole
        batch is produced without a Python-level loop per element.
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        if count == 0:
            return np.empty(0, dtype=np.uint64)
        a_powers = np.empty(count, dtype=np.uint64)
        c_terms = np.empty(count, dtype=np.uint64)
        a_powers[0] = np.uint64(_LCG_A)
        c_terms[0] = np.uint64(_LCG_C)
        a64 = np.uint64(_LCG_A)
        c64 = np.uint64(_LCG_C)
        with np.errstate(over="ignore"):
            for i in range(1, count):
                a_powers[i] = a_powers[i - 1] * a64
                c_terms[i] = c_terms[i - 1] * a64 + c64
            states = a_powers * np.uint64(self.state) + c_terms
        self.state = int(states[-1])
        return states


class RandomWriteBenchmark:
    """Independent random 8-byte writes into an array of ``array_bytes``."""

    name = "random-write"

    def __init__(self, array_bytes: float, *, physical_cap_slots: int = 1 << 20):
        if array_bytes < ELEMENT_BYTES:
            raise ConfigurationError("array must hold at least one element")
        self.array_bytes = float(array_bytes)
        self.physical_slots = min(int(array_bytes // ELEMENT_BYTES), physical_cap_slots)

    def run(
        self,
        ctx: ExecutionContext,
        *,
        writes: float = 1e6,
        physical_writes: int = 100_000,
        variant: CodeVariant = CodeVariant.NAIVE,
        seed: int = 99,
    ) -> MicroResult:
        """Issue ``writes`` logical writes (a capped prefix runs for real)."""
        lcg = Lcg(seed)
        array = np.zeros(self.physical_slots, dtype=np.int64)
        n_physical = min(int(writes), physical_writes)
        addresses = lcg.batch(n_physical) % np.uint64(self.physical_slots)
        np.add.at(array, addresses.astype(np.int64), 1)
        checksum = int(array.sum())

        ctx.allocate("write-array", int(self.array_bytes))
        executor = ctx.executor()
        profile = AccessProfile()
        profile.add(
            AccessBatch(
                kind=PatternKind.RANDOM_WRITE,
                count=writes / ctx.threads,
                element_bytes=ELEMENT_BYTES,
                working_set_bytes=self.array_bytes,
                locality=ctx.data_locality,
                variant=variant,
                parallelism=8.0,
                compute_cycles_per_item=5.0,  # the LCG update itself
                label="lcg-writes",
            )
        )
        executor.run_uniform_phase("writes", profile)
        return MicroResult(
            name=self.name,
            setting=ctx.setting.label,
            operations=writes,
            cycles=executor.total_cycles(),
            checksum=checksum,
        )
