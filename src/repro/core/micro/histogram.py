"""Radix-histogram micro-benchmark (Sec. 4.2, Fig. 7 / Listings 1 and 2).

Builds a histogram of the low key bits of a fixed-size random array for
varying bin counts.  The *result* is identical for every code variant; the
*cost* differs dramatically inside an enclave: the naive loop (Listing 1)
is 225 % slower in enclave mode regardless of where the data lives, the
manually unrolled-and-reordered loop (Listing 2) only 20 %, and the
AVX-assisted 32x unrolling narrows the gap further.
"""

from __future__ import annotations

import numpy as np

from repro.core.micro.pointer_chase import MicroResult
from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind

#: One histogram counter is a 32-bit integer.
BIN_BYTES = 4

#: Bytes of one scanned input element (the join tuple of Listing 1).
ELEMENT_BYTES = 8


def histogram_naive(keys: np.ndarray, bins: int) -> np.ndarray:
    """Listing 1: scan, mask, increment — expressed over numpy."""
    mask = bins - 1
    return np.bincount(keys & mask, minlength=bins)


def histogram_unrolled(keys: np.ndarray, bins: int) -> np.ndarray:
    """Listing 2: 8x unrolled — indexes first, increments after.

    The result is provably identical to the naive loop; the function exists
    so the two code paths both run for real and can be cross-checked, as
    the paper's variants were.
    """
    mask = bins - 1
    head = (len(keys) // 8) * 8
    counts = np.zeros(bins, dtype=np.int64)
    if head:
        # "Calculate 8 indexes, then issue 8 increments": the reshaped view
        # computes all indexes of one unroll group before counting.
        idx_groups = (keys[:head] & mask).reshape(-1, 8)
        for lane in range(8):
            counts += np.bincount(idx_groups[:, lane], minlength=bins)
    counts += np.bincount(keys[head:] & mask, minlength=bins)
    return counts


class HistogramBenchmark:
    """Histogram creation over a fixed array, sweeping the bin count."""

    name = "radix-histogram"

    def __init__(self, input_bytes: float, *, physical_cap_rows: int = 2_000_000):
        if input_bytes < ELEMENT_BYTES:
            raise ConfigurationError("input must hold at least one element")
        self.input_bytes = float(input_bytes)
        self.physical_rows = min(int(input_bytes // ELEMENT_BYTES), physical_cap_rows)

    def run(
        self,
        ctx: ExecutionContext,
        *,
        bins: int,
        variant: CodeVariant = CodeVariant.NAIVE,
        seed: int = 21,
    ) -> MicroResult:
        """Build the histogram with ``bins`` bins under ``ctx``."""
        if bins < 1 or bins & (bins - 1):
            raise ConfigurationError("bins must be a power of two")
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 1 << 31, size=self.physical_rows, dtype=np.int64)
        if variant is CodeVariant.NAIVE:
            counts = histogram_naive(keys, bins)
        else:
            counts = histogram_unrolled(keys, bins)
        checksum = int(counts.sum())

        logical_rows = self.input_bytes / ELEMENT_BYTES
        ctx.allocate("hist-input", int(self.input_bytes))
        executor = ctx.executor()
        profile = AccessProfile()
        profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=logical_rows / ctx.threads,
                element_bytes=ELEMENT_BYTES,
                working_set_bytes=self.input_bytes,
                locality=ctx.data_locality,
                variant=variant,
                parallelism=8.0,
                compute_cycles_per_item=1.3,
                table_bytes=max(1.0, bins * BIN_BYTES),
                table_locality=ctx.data_locality,
                table_writes=True,
                reorder_sensitivity=1.0,
                label="histogram",
            )
        )
        executor.run_uniform_phase("histogram", profile)
        return MicroResult(
            name=self.name,
            setting=ctx.setting.label,
            operations=logical_rows,
            cycles=executor.total_cycles(),
            checksum=checksum,
        )
