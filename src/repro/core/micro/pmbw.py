"""pmbw-style linear read/write bandwidth benchmark (Sec. 5.4, Fig. 15).

The original pmbw writes its loops in assembly so compilers can neither
vectorize the scalar variants nor delete the read loops; we mirror its four
kernels — 64-bit and 512-bit reads and writes — as numpy reductions/fills
with the operand width captured in the priced access batch.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.micro.pointer_chase import MicroResult
from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import AccessProfile, CodeVariant


class LinearOp(enum.Enum):
    """The four pmbw kernels used in Fig. 15."""

    READ_64 = ("read", 8, CodeVariant.NAIVE)
    READ_512 = ("read", 64, CodeVariant.SIMD)
    WRITE_64 = ("write", 8, CodeVariant.NAIVE)
    WRITE_512 = ("write", 64, CodeVariant.SIMD)

    def __init__(self, direction: str, operand_bytes: int, variant: CodeVariant):
        self.direction = direction
        self.operand_bytes = operand_bytes
        self.variant = variant


class LinearAccessBenchmark:
    """Streaming reads or writes over an array of ``array_bytes``."""

    name = "pmbw-linear"

    def __init__(self, array_bytes: float, *, physical_cap_bytes: int = 16_000_000):
        if array_bytes < 8:
            raise ConfigurationError("array must hold at least one operand")
        self.array_bytes = float(array_bytes)
        self.physical_bytes = min(int(array_bytes), physical_cap_bytes)

    def run(
        self,
        ctx: ExecutionContext,
        op: LinearOp,
        *,
        repeats: int = 1,
        seed: int = 5,
    ) -> MicroResult:
        """Stream the array ``repeats`` times with kernel ``op``."""
        if repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        rng = np.random.default_rng(seed)
        elements = max(1, self.physical_bytes // 8)
        array = rng.integers(0, 1 << 31, size=elements, dtype=np.int64)
        if op.direction == "read":
            checksum = int(array.sum()) & ((1 << 63) - 1)
        else:
            array[:] = 42
            checksum = int(array[0] + array[-1])

        ctx.allocate("pmbw-array", int(self.array_bytes))
        executor = ctx.executor()
        locality = ctx.data_locality
        operations = self.array_bytes / op.operand_bytes
        share = operations / ctx.threads
        profile = AccessProfile()
        for _ in range(repeats):
            if op.direction == "read":
                profile.seq_read(
                    share, op.operand_bytes, locality, variant=op.variant,
                    working_set_bytes=self.array_bytes,
                    label=op.name.lower(),
                )
            else:
                profile.seq_write(
                    share, op.operand_bytes, locality, variant=op.variant,
                    working_set_bytes=self.array_bytes,
                    label=op.name.lower(),
                )
        executor.run_uniform_phase("stream", profile)
        return MicroResult(
            name=f"{self.name}-{op.name.lower()}",
            setting=ctx.setting.label,
            operations=operations * repeats,
            cycles=executor.total_cycles(),
            checksum=checksum,
        )

    def bandwidth_bytes_per_s(
        self, result: MicroResult, op: LinearOp, frequency_hz: float
    ) -> float:
        """Aggregate streamed bytes per second for a finished run."""
        seconds = result.cycles / frequency_hz
        if seconds <= 0:
            raise ConfigurationError("benchmark consumed no simulated time")
        return result.operations * op.operand_bytes / seconds
