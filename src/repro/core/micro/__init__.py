"""Micro-benchmarks used to isolate SGXv2 root causes (Sec. 4.1/4.2/5.4)."""

from repro.core.micro.pointer_chase import PointerChaseBenchmark, build_pointer_cycle
from repro.core.micro.random_write import Lcg, RandomWriteBenchmark
from repro.core.micro.histogram import HistogramBenchmark
from repro.core.micro.pmbw import LinearAccessBenchmark, LinearOp

__all__ = [
    "PointerChaseBenchmark",
    "build_pointer_cycle",
    "Lcg",
    "RandomWriteBenchmark",
    "HistogramBenchmark",
    "LinearAccessBenchmark",
    "LinearOp",
]
