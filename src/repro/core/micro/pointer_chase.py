"""Pointer chasing à la pmbw (Sec. 4.1, Fig. 5 left).

An array of pointers forms one closed cycle through random positions; each
load depends on the previous one, defeating out-of-order overlap and
exposing the full random-read latency.  This is the worst case for SGXv2's
memory decryption: with a 16 GB array the paper measures 53 % of the
plain-CPU throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind

#: Bytes per chain slot (one 64-bit pointer).
SLOT_BYTES = 8


def build_pointer_cycle(slots: int, rng: np.random.Generator) -> np.ndarray:
    """A permutation array forming a single cycle over all slots.

    ``chain[i]`` is the next index after ``i``; following it visits every
    slot exactly once before returning to the start (a Sattolo-style cycle,
    built vectorized: visit the slots in shuffled order).
    """
    if slots < 1:
        raise ConfigurationError("need at least one slot")
    visit_order = rng.permutation(slots)
    chain = np.empty(slots, dtype=np.int64)
    chain[visit_order] = np.roll(visit_order, -1)
    return chain


def chase(chain: np.ndarray, steps: int, start: int = 0) -> int:
    """Follow the chain ``steps`` times; returns the final position.

    The real dependent-load loop; used to verify chain integrity in tests
    and to keep the benchmark honest (the work actually happens).
    """
    position = start
    for _ in range(steps):
        position = int(chain[position])
    return position


@dataclass
class MicroResult:
    """Outcome of a micro-benchmark run."""

    name: str
    setting: str
    operations: float
    cycles: float
    checksum: int = 0

    def cycles_per_operation(self) -> float:
        if self.operations <= 0:
            raise ConfigurationError("no operations recorded")
        return self.cycles / self.operations

    def throughput_ops_per_s(self, frequency_hz: float) -> float:
        return self.operations / (self.cycles / frequency_hz)


class PointerChaseBenchmark:
    """Dependent random reads over an array of ``array_bytes``."""

    name = "pointer-chase"

    def __init__(self, array_bytes: float, *, physical_cap_slots: int = 1 << 20):
        if array_bytes < SLOT_BYTES:
            raise ConfigurationError("array must hold at least one pointer")
        self.array_bytes = float(array_bytes)
        self.physical_slots = min(int(array_bytes // SLOT_BYTES), physical_cap_slots)

    def run(
        self,
        ctx: ExecutionContext,
        *,
        steps: float = 1e6,
        verify_steps: int = 10_000,
        seed: int = 3,
    ) -> MicroResult:
        """Chase ``steps`` (logical) pointers; a capped physical chase runs
        for real to exercise the dependent-load path."""
        rng = np.random.default_rng(seed)
        chain = build_pointer_cycle(self.physical_slots, rng)
        checksum = chase(chain, min(verify_steps, int(steps)))

        ctx.allocate("chase-array", int(self.array_bytes))
        executor = ctx.executor()
        profile = AccessProfile()
        profile.add(
            AccessBatch(
                kind=PatternKind.DEPENDENT_READ,
                count=steps / ctx.threads,
                element_bytes=SLOT_BYTES,
                working_set_bytes=self.array_bytes,
                locality=ctx.data_locality,
                variant=CodeVariant.NAIVE,
                parallelism=1.0,
                compute_cycles_per_item=1.0,
                label="chase",
            )
        )
        executor.run_uniform_phase("chase", profile)
        return MicroResult(
            name=self.name,
            setting=ctx.setting.label,
            operations=steps,
            cycles=executor.total_cycles(),
            checksum=checksum,
        )
