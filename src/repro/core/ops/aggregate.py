"""Hash-based group-by aggregation under the SGXv2 cost model.

The paper's queries replace final aggregations with ``count(*)``; this
operator restores the real thing for users who want full query answers.
Its cost signature is the natural extension of the histogram study
(Sec. 4.2): a grouped aggregation *is* a value-carrying histogram, so the
enclave-mode loop-execution penalty applies with full force while the
group table stays cache-resident, and the random-write penalties take over
once the group count pushes the table past L3 — both mitigated by the same
manual unroll/reorder optimization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind

#: Bytes per group-table entry: key, count, and one accumulator per agg.
_ENTRY_BASE_BYTES = 16
_ENTRY_PER_AGG_BYTES = 8

#: Loop-body cycles per input row (hash, probe-or-insert, accumulate).
_ROW_COMPUTE = 6.0

#: Like the radix histogram, the accumulate loop is fully exposed to the
#: enclave reordering restriction.
_REORDER_SENSITIVITY = 0.9


class AggFunc(enum.Enum):
    """Supported aggregate functions."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"


@dataclass
class AggregateResult:
    """Grouped aggregates plus the simulated execution cost."""

    group_keys: np.ndarray
    aggregates: Dict[str, np.ndarray]
    input_rows: float
    cycles: float

    @property
    def num_groups(self) -> int:
        return len(self.group_keys)

    def throughput_rows_per_s(self, frequency_hz: float) -> float:
        if self.cycles <= 0:
            raise ConfigurationError("aggregation consumed no simulated time")
        return self.input_rows / (self.cycles / frequency_hz)


class HashAggregate:
    """``SELECT key, agg(value), ... GROUP BY key`` over numpy columns."""

    name = "hash-aggregate"

    def __init__(self, variant: CodeVariant = CodeVariant.NAIVE) -> None:
        self.variant = variant

    def run(
        self,
        ctx: ExecutionContext,
        keys: np.ndarray,
        values: np.ndarray,
        functions: Sequence[AggFunc] = (AggFunc.COUNT,),
        *,
        sim_scale: float = 1.0,
    ) -> AggregateResult:
        """Group ``values`` by ``keys`` and compute ``functions``."""
        if len(keys) != len(values):
            raise ConfigurationError("keys and values must have equal length")
        if not functions:
            raise ConfigurationError("need at least one aggregate function")
        keys = np.asarray(keys)
        values = np.asarray(values)

        # ---- real computation -------------------------------------------
        group_keys, inverse = np.unique(keys, return_inverse=True)
        aggregates: Dict[str, np.ndarray] = {}
        for function in functions:
            if function is AggFunc.COUNT:
                aggregates["count"] = np.bincount(
                    inverse, minlength=len(group_keys)
                )
            elif function is AggFunc.SUM:
                aggregates["sum"] = np.bincount(
                    inverse, weights=values, minlength=len(group_keys)
                )
            elif function is AggFunc.MIN:
                out = np.full(len(group_keys), np.inf)
                np.minimum.at(out, inverse, values)
                aggregates["min"] = out
            elif function is AggFunc.MAX:
                out = np.full(len(group_keys), -np.inf)
                np.maximum.at(out, inverse, values)
                aggregates["max"] = out
            else:  # pragma: no cover - exhaustive enum
                raise ConfigurationError(f"unknown aggregate {function}")

        # ---- cost ---------------------------------------------------------
        executor = ctx.executor()
        locality = ctx.data_locality
        logical_rows = len(keys) * sim_scale
        logical_groups = max(1.0, len(group_keys) * sim_scale)
        entry_bytes = _ENTRY_BASE_BYTES + _ENTRY_PER_AGG_BYTES * len(functions)
        table_bytes = logical_groups * entry_bytes
        ctx.allocate("agg-input", int(logical_rows * 8))
        ctx.allocate("agg-table", int(table_bytes))
        share = logical_rows / ctx.threads
        profile = AccessProfile()
        profile.add(
            AccessBatch(
                kind=PatternKind.RMW_LOOP,
                count=share,
                element_bytes=8,  # key + value per row
                working_set_bytes=logical_rows * 8,
                locality=locality,
                variant=self.variant,
                parallelism=8.0,
                compute_cycles_per_item=_ROW_COMPUTE,
                table_bytes=table_bytes,
                table_locality=locality,
                table_writes=True,
                reorder_sensitivity=_REORDER_SENSITIVITY,
                label="group-accumulate",
            )
        )
        # Per-thread partial tables are merged at the end.
        profile.seq_write(
            logical_groups / ctx.threads, entry_bytes, locality, label="merge"
        )
        executor.run_uniform_phase("aggregate", profile)

        return AggregateResult(
            group_keys=group_keys,
            aggregates=aggregates,
            input_rows=logical_rows,
            cycles=executor.total_cycles(),
        )
