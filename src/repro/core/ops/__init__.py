"""Additional OLAP operators beyond the paper's core join/scan set."""

from repro.core.ops.aggregate import AggFunc, AggregateResult, HashAggregate
from repro.core.ops.sort import ParallelSort, SortResult, TopK

__all__ = [
    "AggFunc",
    "AggregateResult",
    "HashAggregate",
    "ParallelSort",
    "SortResult",
    "TopK",
]
