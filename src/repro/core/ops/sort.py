"""Parallel sort operator (the MWAY sort stage as a standalone primitive).

ORDER BY is the remaining staple of the OLAP operator set.  The cost
signature reuses what the MWAY join study established: sorting is
sequential-access and compute-heavy, so SGXv2 barely touches it — a useful
contrast to the hash-based operators.  The real work is a numpy sort whose
output is verified against the input's multiset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import AccessBatch, AccessProfile, CodeVariant, PatternKind

#: Per-row cycles of the in-cache run sort (AVX bitonic networks).
_RUN_SORT_COMPUTE = 52.0
#: Per-row cycles of the multi-way merge of sorted runs.
_MERGE_COMPUTE = 34.0
#: Sorting kernels have abundant ILP (cf. MWAY in Fig. 3).
_REORDER_SENSITIVITY = 0.1


@dataclass
class SortResult:
    """Sorted data plus the simulated execution cost."""

    order: np.ndarray
    sorted_keys: np.ndarray
    input_rows: float
    cycles: float

    def throughput_rows_per_s(self, frequency_hz: float) -> float:
        if self.cycles <= 0:
            raise ConfigurationError("sort consumed no simulated time")
        return self.input_rows / (self.cycles / frequency_hz)


class ParallelSort:
    """Run-sort + multi-way merge over a key column, with row order out."""

    name = "parallel-sort"

    def __init__(self, row_bytes: int = 8) -> None:
        if row_bytes <= 0:
            raise ConfigurationError("row_bytes must be positive")
        self.row_bytes = row_bytes

    def run(
        self,
        ctx: ExecutionContext,
        keys: np.ndarray,
        *,
        sim_scale: float = 1.0,
        descending: bool = False,
    ) -> SortResult:
        """Sort ``keys`` (stable), returning the permutation and sorted keys."""
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ConfigurationError("keys must be 1-dimensional")

        # ---- real computation -------------------------------------------
        order = np.argsort(keys, kind="stable")
        if descending:
            order = order[::-1].copy()
        sorted_keys = keys[order]

        # ---- cost ---------------------------------------------------------
        executor = ctx.executor()
        locality = ctx.data_locality
        logical_rows = len(keys) * sim_scale
        logical_bytes = logical_rows * self.row_bytes
        ctx.allocate("sort-input", int(logical_bytes))
        ctx.allocate("sort-scratch", int(logical_bytes))
        share = logical_rows / ctx.threads
        for phase_name, compute in (
            ("run-sort", _RUN_SORT_COMPUTE),
            ("merge", _MERGE_COMPUTE),
        ):
            profile = AccessProfile()
            profile.add(
                AccessBatch(
                    kind=PatternKind.RMW_LOOP,
                    count=share,
                    element_bytes=self.row_bytes,
                    working_set_bytes=logical_bytes,
                    locality=locality,
                    variant=CodeVariant.SIMD,
                    parallelism=8.0,
                    compute_cycles_per_item=compute,
                    table_bytes=512 * 1024.0,  # run / merge-tree state
                    table_locality=locality,
                    table_writes=True,
                    reorder_sensitivity=_REORDER_SENSITIVITY,
                    label=phase_name,
                )
            )
            profile.seq_write(
                share,
                self.row_bytes,
                locality,
                working_set_bytes=logical_bytes,
                label=f"{phase_name}-out",
            )
            executor.run_uniform_phase(phase_name, profile)

        return SortResult(
            order=order,
            sorted_keys=sorted_keys,
            input_rows=logical_rows,
            cycles=executor.total_cycles(),
        )


class TopK:
    """``ORDER BY ... LIMIT k`` without a full sort (per-thread heaps).

    Each thread scans its share maintaining a ``k``-element heap; the heaps
    merge at the end.  For ``k`` far below the input size this is a nearly
    pure streaming operator — the cheapest possible shape for an enclave.
    """

    name = "top-k"

    def __init__(self, k: int, row_bytes: int = 8) -> None:
        if k <= 0:
            raise ConfigurationError("k must be positive")
        self.k = k
        self.row_bytes = row_bytes

    def run(
        self,
        ctx: ExecutionContext,
        keys: np.ndarray,
        *,
        sim_scale: float = 1.0,
        largest: bool = True,
    ) -> Tuple[np.ndarray, float]:
        """Indexes of the top-``k`` keys plus the simulated cycles."""
        keys = np.asarray(keys)
        k = min(self.k, len(keys))

        # ---- real computation -------------------------------------------
        if k == 0:
            top = np.empty(0, dtype=np.int64)
        elif largest:
            candidates = np.argpartition(keys, len(keys) - k)[-k:]
            top = candidates[np.argsort(keys[candidates], kind="stable")][::-1]
        else:
            candidates = np.argpartition(keys, k - 1)[:k]
            top = candidates[np.argsort(keys[candidates], kind="stable")]
        top = top.astype(np.int64)

        # ---- cost ---------------------------------------------------------
        executor = ctx.executor()
        locality = ctx.data_locality
        logical_rows = len(keys) * sim_scale
        logical_bytes = logical_rows * self.row_bytes
        ctx.allocate("topk-input", int(logical_bytes))
        share = logical_rows / ctx.threads
        profile = AccessProfile()
        # Streaming scan; heap updates are rare (expected k * ln(n/k) per
        # thread) and the heap itself is cache-resident.
        profile.seq_read(
            share,
            self.row_bytes,
            locality,
            working_set_bytes=logical_bytes,
            label="scan",
        )
        expected_updates = self.k * max(1.0, np.log(max(share / self.k, 2.0)))
        profile.compute(expected_updates * 30.0, label="heap-updates")
        executor.run_uniform_phase("topk", profile)
        return top, executor.total_cycles()
