"""Range scan over bit-packed (dictionary-compressed) columns.

The Willhalm-style SIMD scan [38] decompresses ``k``-bit codes inside
vector registers and compares against the (dictionary-coded) range bounds.
Relative to the plain byte-wise scan, the packed scan reads ``k/8`` as many
bytes per value, so a bandwidth-bound scan processes ``8/k`` times more
values per second — and, inside an enclave, a ``k``-bit column occupies
``k/32`` of the EPC a 32-bit column would.
"""

from __future__ import annotations

import numpy as np

from repro.core.scans.predicate import RangePredicate
from repro.core.scans.simd_scan import ScanResult
from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import AccessProfile, CodeVariant
from repro.tables.bitpack import BitPackedColumn

#: Cycles per value for the in-register unpack + compare network.
_UNPACK_COMPUTE_PER_VALUE = 0.25


class PackedScan:
    """Multi-threaded range scan over a :class:`BitPackedColumn`."""

    name = "simd-packed-scan"

    def run(
        self,
        ctx: ExecutionContext,
        column: BitPackedColumn,
        predicate: RangePredicate,
        *,
        sim_scale: float = 1.0,
        repeats: int = 1,
    ) -> ScanResult:
        """Scan the packed column, producing a packed bit vector."""
        if repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        executor = ctx.executor()
        locality = ctx.data_locality
        threads = ctx.threads

        # ---- real computation: decode and compare -----------------------
        decoded = column.unpack()
        mask = predicate.evaluate(decoded)
        bitvector = np.packbits(mask)
        matches = int(mask.sum())

        # ---- cost ---------------------------------------------------------
        logical_values = column.num_values * sim_scale
        logical_bytes = logical_values * column.bytes_per_value
        ctx.allocate("packed-scan-input", max(1, int(logical_bytes)))
        ctx.allocate("packed-scan-bitvector", max(1, int(logical_values / 8)))
        share_values = logical_values / threads
        profile = AccessProfile()
        for _ in range(repeats):
            # The packed stream is read word-wise; express the batch in
            # 8-byte words so element counts stay integral.
            profile.seq_read(
                share_values * column.bytes_per_value / 8.0,
                8,
                locality,
                variant=CodeVariant.SIMD,
                working_set_bytes=logical_bytes,
                label="packed-read",
            )
            profile.compute(
                share_values * _UNPACK_COMPUTE_PER_VALUE, label="unpack"
            )
            profile.seq_write(
                share_values / 8.0,
                1,
                locality,
                variant=CodeVariant.SIMD,
                working_set_bytes=logical_values / 8.0,
                label="bitvector-write",
            )
        executor.run_uniform_phase("packed-scan", profile)

        return ScanResult(
            algorithm=self.name,
            setting=ctx.setting.label,
            threads=threads,
            repeats=repeats,
            input_bytes=logical_bytes,
            matches=matches,
            matches_logical=matches * sim_scale,
            cycles=executor.total_cycles(),
            bitvector=bitvector,
            extra={"bits": float(column.bits)},
        )

    def values_per_second(
        self, result: ScanResult, frequency_hz: float
    ) -> float:
        """Decoded values per second (the packed scan's natural metric)."""
        bits = result.extra["bits"]
        values = result.input_bytes / (bits / 8.0)
        return values * result.repeats / result.seconds(frequency_hz)
