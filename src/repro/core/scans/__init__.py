"""Column scans (Sec. 5): SIMD bit-vector scans and row-id scans."""

from repro.core.scans.predicate import RangePredicate
from repro.core.scans.simd_scan import BitvectorScan, ScanResult
from repro.core.scans.index_scan import RowIdScan

__all__ = ["RangePredicate", "BitvectorScan", "RowIdScan", "ScanResult"]
