"""Row-id materializing scan (Sec. 5.3, the variable write-rate scan).

Instead of a packed bit vector, this scan emits a 64-bit row index for
every qualifying value.  With an 8-bit column, the write rate is 8x the
selectivity — at 100 % selectivity the scan writes eight bytes for every
byte it reads, the most write-intensive configuration of Fig. 14.
"""

from __future__ import annotations

import numpy as np

from repro.core.scans.predicate import RangePredicate
from repro.core.scans.simd_scan import ScanResult
from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import AccessProfile, CodeVariant
from repro.tables.table import Column

#: Bytes per emitted row identifier.
ROW_ID_BYTES = 8


class RowIdScan:
    """Range scan materializing qualifying row indexes."""

    name = "simd-rowid-scan"

    def __init__(self, variant: CodeVariant = CodeVariant.SIMD) -> None:
        self.variant = variant

    def run(
        self,
        ctx: ExecutionContext,
        column: Column,
        predicate: RangePredicate,
        *,
        sim_scale: float = 1.0,
        repeats: int = 1,
    ) -> ScanResult:
        """Scan ``column``, materializing matching row ids."""
        if repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        executor = ctx.executor()
        locality = ctx.data_locality
        threads = ctx.threads

        # ---- real computation -------------------------------------------
        mask = predicate.evaluate(column.data)
        row_ids = np.flatnonzero(mask).astype(np.int64)
        matches = int(len(row_ids))
        selectivity = matches / max(len(column), 1)

        # ---- cost ---------------------------------------------------------
        logical_elements = len(column) * sim_scale
        logical_bytes = logical_elements * column.element_bytes
        logical_matches = logical_elements * selectivity
        ctx.allocate("scan-input", int(logical_bytes))
        ctx.allocate("scan-rowids", max(1, int(logical_matches * ROW_ID_BYTES)))
        share_in = logical_elements / threads
        share_out = logical_matches / threads
        profile = AccessProfile()
        for _ in range(repeats):
            profile.seq_read(
                share_in,
                column.element_bytes,
                locality,
                variant=self.variant,
                working_set_bytes=logical_bytes,
                label="scan-read",
            )
            profile.seq_write(
                share_out,
                ROW_ID_BYTES,
                locality,
                variant=self.variant,
                working_set_bytes=logical_matches * ROW_ID_BYTES,
                label="rowid-write",
            )
        executor.run_uniform_phase("scan", profile)

        return ScanResult(
            algorithm=self.name,
            setting=ctx.setting.label,
            threads=threads,
            repeats=repeats,
            input_bytes=logical_bytes,
            matches=matches,
            matches_logical=matches * sim_scale,
            cycles=executor.total_cycles(),
            row_ids=row_ids,
            extra={"selectivity": selectivity},
        )
