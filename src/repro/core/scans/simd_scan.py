"""AVX-512-style bit-vector column scan (Sec. 5.1/5.2).

The kernel loads 64 byte-sized values per instruction, compares against the
range bounds, and stores the result as a packed bit vector (1 bit per input
value — a 1/8 write-to-read byte ratio for 8-bit columns).  The numpy
evaluation below computes the same bit vector; the access profile prices
one streaming read of the column plus the bit-vector write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.scans.predicate import RangePredicate
from repro.errors import ConfigurationError
from repro.machine import ExecutionContext
from repro.memory.access import AccessProfile, CodeVariant
from repro.tables.table import Column


@dataclass
class ScanResult:
    """Outcome of a (repeated) column scan."""

    algorithm: str
    setting: str
    threads: int
    repeats: int
    input_bytes: float
    matches: int
    matches_logical: float
    cycles: float
    bitvector: Optional[np.ndarray] = None
    row_ids: Optional[np.ndarray] = None
    extra: Dict[str, float] = None

    def seconds(self, frequency_hz: float) -> float:
        return self.cycles / frequency_hz

    def read_throughput_bytes_per_s(self, frequency_hz: float) -> float:
        """Bytes of column data read per second (the Fig. 12-16 metric)."""
        seconds = self.seconds(frequency_hz)
        if seconds <= 0:
            raise ConfigurationError("scan consumed no simulated time")
        return self.input_bytes * self.repeats / seconds


class BitvectorScan:
    """Multi-threaded range scan producing a packed bit vector."""

    name = "simd-bitvector-scan"

    def __init__(self, variant: CodeVariant = CodeVariant.SIMD) -> None:
        self.variant = variant

    def run(
        self,
        ctx: ExecutionContext,
        column: Column,
        predicate: RangePredicate,
        *,
        sim_scale: float = 1.0,
        repeats: int = 1,
        warmup: int = 0,
    ) -> ScanResult:
        """Scan ``column`` ``repeats`` times under ``ctx``.

        ``warmup`` extra scans run before timing starts (the paper uses 10
        to populate the caches for cache-resident sizes).  ``sim_scale``
        scales the physical column to its logical size, as with tables.
        """
        if repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        executor = ctx.executor()
        locality = ctx.data_locality
        threads = ctx.threads

        # ---- real computation -------------------------------------------
        mask = predicate.evaluate(column.data)
        bitvector = np.packbits(mask)
        matches = int(mask.sum())

        # ---- cost ---------------------------------------------------------
        logical_elements = len(column) * sim_scale
        logical_bytes = logical_elements * column.element_bytes
        ctx.allocate("scan-input", int(logical_bytes))
        ctx.allocate("scan-bitvector", max(1, int(logical_elements / 8)))
        share = logical_elements / threads
        profile = AccessProfile()
        for _ in range(repeats):
            profile.seq_read(
                share,
                column.element_bytes,
                locality,
                variant=self.variant,
                working_set_bytes=logical_bytes,
                label="scan-read",
            )
            # Packed bit vector: one byte written per 8 input values.
            profile.seq_write(
                share / 8.0,
                1,
                locality,
                variant=self.variant,
                working_set_bytes=logical_elements / 8.0,
                label="bitvector-write",
            )
        executor.run_uniform_phase("scan", profile)

        return ScanResult(
            algorithm=self.name,
            setting=ctx.setting.label,
            threads=threads,
            repeats=repeats,
            input_bytes=logical_bytes,
            matches=matches,
            matches_logical=matches * sim_scale,
            cycles=executor.total_cycles(),
            bitvector=bitvector,
        )
