"""Range predicates for column scans.

The paper's scan kernels compare each value against a lower and an upper
bound (a BETWEEN filter), which is the canonical predicate shape for
SIMD-scan studies [Willhalm et al., Polychroniou et al.].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RangePredicate:
    """``lower <= value <= upper`` (inclusive on both ends)."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ConfigurationError(
                f"empty range predicate: lower {self.lower} > upper {self.upper}"
            )

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of qualifying values."""
        return (values >= self.lower) & (values <= self.upper)

    def selectivity(self, values: np.ndarray) -> float:
        """Fraction of qualifying values (exact, from the data)."""
        if len(values) == 0:
            return 0.0
        return float(self.evaluate(values).mean())

    @classmethod
    def with_selectivity(
        cls, values: np.ndarray, selectivity: float
    ) -> "RangePredicate":
        """A predicate selecting approximately ``selectivity`` of ``values``.

        Uses the empirical quantile of the data, so the realized selectivity
        matches the request even for skewed inputs.
        """
        if not 0.0 <= selectivity <= 1.0:
            raise ConfigurationError("selectivity must be within [0, 1]")
        if len(values) == 0:
            return cls(0, 0)
        lo = float(np.min(values)) - 1
        if selectivity >= 1.0:
            return cls(lo, float(np.max(values)) + 1)
        if selectivity <= 0.0:
            return cls(lo, lo)
        upper = float(np.quantile(values, selectivity))
        return cls(lo, upper)
