"""The paper's query-processing operators: joins, scans, micro-benchmarks,
and full TPC-H queries."""
