"""Content-addressed result caching for the bench stack.

``repro.cache`` memoizes costed experiment results and their exported
traces under canonical content hashes: :mod:`repro.cache.keys` turns an
(experiment id, operator params, execution setting, seed, calibration
digest) tuple into a SHA-256 key, and :class:`~repro.cache.store.MemoStore`
serves those keys from an in-memory LRU backed by an on-disk JSON store.
Calibration changes rotate the keys, so invalidation is automatic — a
modified cost model can never be answered from stale results.
"""

from repro.cache.keys import (
    CACHE_FORMAT,
    calibration_digest,
    canonical,
    experiment_key,
    fingerprint,
)
from repro.cache.store import DEFAULT_MEMORY_ENTRIES, MemoStore

__all__ = [
    "CACHE_FORMAT",
    "DEFAULT_MEMORY_ENTRIES",
    "MemoStore",
    "calibration_digest",
    "canonical",
    "experiment_key",
    "fingerprint",
]
