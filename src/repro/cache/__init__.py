"""Content-addressed result caching for the bench stack.

``repro.cache`` memoizes costed experiment results and their exported
traces under canonical content hashes: :mod:`repro.cache.keys` turns an
(experiment id, operator params, execution setting, seed, calibration
digest) tuple into a SHA-256 key, and :class:`~repro.cache.store.MemoStore`
serves those keys from an in-memory LRU backed by an on-disk JSON store.
Calibration changes rotate the keys, so invalidation is automatic — a
modified cost model can never be answered from stale results.

Below the experiment level, :mod:`repro.cache.profile` memoizes the
individual *pricing runs* (catalog profiles, planner candidate
estimates) under :func:`~repro.cache.keys.query_profile_key`, so
repeated templates across experiments, planner arms, and cluster shards
execute the real operators exactly once per process (or once per cache
directory, with a disk tier).
"""

from repro.cache.keys import (
    CACHE_FORMAT,
    calibration_digest,
    canonical,
    experiment_key,
    fingerprint,
    query_profile_key,
)
from repro.cache.profile import (
    DEFAULT_PROFILE_ENTRIES,
    DISABLED_MEMO,
    ProfileMemo,
    profile_memo,
    use_profile_memo,
)
from repro.cache.store import DEFAULT_MEMORY_ENTRIES, MemoStore

__all__ = [
    "CACHE_FORMAT",
    "DEFAULT_MEMORY_ENTRIES",
    "DEFAULT_PROFILE_ENTRIES",
    "DISABLED_MEMO",
    "MemoStore",
    "ProfileMemo",
    "calibration_digest",
    "canonical",
    "experiment_key",
    "fingerprint",
    "profile_memo",
    "query_profile_key",
    "use_profile_memo",
]
