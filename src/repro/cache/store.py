"""The memo store: an in-memory LRU in front of an on-disk JSON store.

Values are JSON-safe dicts (costed reports, access-profile summaries,
exported trace texts) addressed by the content hashes of
:mod:`repro.cache.keys`.  The LRU bounds resident memory; the disk tier —
one ``<key>.json`` file per entry under the cache directory — persists
across processes and survives restarts.  Disk writes are atomic (write to
a temp file, then rename), so a crashed run never leaves a half-written
entry behind; an unreadable entry is treated as a miss, never an error.
The disk tier is bounded too: at most ``disk_entries`` files are kept
(default :data:`DEFAULT_DISK_ENTRIES`), evicting oldest-first by
modification time so a long-lived shared cache directory cannot grow
without limit across sessions.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import OrderedDict
from typing import Any, Dict, Optional, Union

from repro.errors import CacheError

#: Default number of entries the in-memory tier keeps resident.
DEFAULT_MEMORY_ENTRIES = 64

#: Default number of entries the disk tier may hold.  Long ``--cache DIR``
#: sessions (sweeps over many seeds, scale factors, and calibrations) used
#: to grow the directory without bound; when the cap is exceeded the
#: oldest files — by modification time, name as the deterministic
#: tie-break — are deleted first.  4096 JSON memo entries is a few tens of
#: MB, far more than any one session touches, while still bounding a
#: months-old shared cache directory.
DEFAULT_DISK_ENTRIES = 4096


class MemoStore:
    """Content-addressed memo cache: memory LRU over an optional disk tier.

    ``directory=None`` gives a purely in-memory store (tests, throwaway
    sessions); with a directory, entries evicted from memory remain on disk
    and are transparently re-promoted on the next :meth:`get`.

    The store counts its own traffic (:attr:`hits` / :attr:`misses`); the
    session driver mirrors those counts into trace counters so ``--trace``
    shows exactly what was recomputed.
    """

    def __init__(
        self,
        directory: Optional[Union[str, pathlib.Path]] = None,
        *,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        disk_entries: int = DEFAULT_DISK_ENTRIES,
    ) -> None:
        if memory_entries < 1:
            raise CacheError("memory_entries must be at least 1")
        if disk_entries < 1:
            raise CacheError("disk_entries must be at least 1")
        self.directory = pathlib.Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.memory_entries = memory_entries
        self.disk_entries = disk_entries
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- addressing ------------------------------------------------------

    def path_for(self, key: str) -> Optional[pathlib.Path]:
        """The on-disk file backing ``key`` (None for memory-only stores)."""
        if self.directory is None:
            return None
        if not key or any(c in key for c in "/\\."):
            raise CacheError(f"malformed cache key {key!r}")
        return self.directory / f"{key}.json"

    # -- access ----------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached value for ``key``, or None (counted as hit/miss)."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.hits += 1
            return self._memory[key]
        path = self.path_for(key)
        if path is not None and path.exists():
            try:
                value = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                # A torn or corrupt entry must never poison a run: degrade
                # to a miss and recompute — but leave an audit trail, or
                # silent corruption (a flaky disk, a truncating crash)
                # looks exactly like an expected cold cache.
                from repro.trace.tracer import current_tracer

                tracer = current_tracer()
                if tracer.enabled:
                    tracer.event(
                        "cache.corrupt_entry",
                        key=key,
                        path=str(path),
                        error=type(exc).__name__,
                    )
                self.misses += 1
                return None
            self._remember(key, value)
            self.hits += 1
            return value
        self.misses += 1
        return None

    def put(self, key: str, value: Dict[str, Any]) -> None:
        """Store ``value`` under ``key`` in both tiers."""
        if not isinstance(value, dict):
            raise CacheError(f"cache values must be dicts, got {type(value).__name__}")
        try:
            text = json.dumps(value, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise CacheError(f"cache value is not JSON-serializable: {exc}") from None
        path = self.path_for(key)
        if path is not None:
            # The temp name carries the writer's pid: concurrent workers
            # storing the *same* key (e.g. two shards pricing one shared
            # profile) must not rename each other's half-written temp
            # file away.  Both renames are atomic; last writer wins with
            # identical content.
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(text)
            os.replace(tmp, path)
            self._evict_disk(keep=path)
        self._remember(key, value)

    def _evict_disk(self, *, keep: pathlib.Path) -> None:
        """Hold the disk tier at ``disk_entries`` files, oldest out first.

        Ordered by (mtime, name) so eviction is deterministic even when a
        burst of writes lands within one timestamp granule.  The entry just
        written is never the victim, and a file another worker deleted
        first is simply skipped.
        """
        if self.directory is None:
            return
        entries = []
        for candidate in self.directory.glob("*.json"):
            if candidate == keep:
                continue
            try:
                mtime = candidate.stat().st_mtime
            except OSError:
                continue
            entries.append((mtime, candidate.name, candidate))
        excess = len(entries) + 1 - self.disk_entries
        if excess <= 0:
            return
        entries.sort()
        for _, _, victim in entries[:excess]:
            try:
                victim.unlink()
            except OSError:
                pass
            self._memory.pop(victim.name[: -len(".json")], None)

    def _remember(self, key: str, value: Dict[str, Any]) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # -- inspection ------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        path = self.path_for(key)
        return path is not None and path.exists()

    def __len__(self) -> int:
        """Number of distinct entries across both tiers."""
        keys = set(self._memory)
        if self.directory is not None:
            keys.update(p.stem for p in self.directory.glob("*.json"))
        return len(keys)

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}
