"""Canonical cache keys: content-addressed hashes of run configurations.

A cache key is the SHA-256 of a canonical JSON rendering of everything
that determines a costed result: the experiment id, the operator/fidelity
parameters, the :class:`~repro.enclave.runtime.ExecutionSetting`, the base
seed, and a digest of the calibration constants plus hardware spec.  Keys
are *content-addressed*: changing any calibration constant (or the cache
format) changes every key, so stale entries are never served — they are
simply never looked up again.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Dict, Optional

from repro.errors import CacheError
from repro.faults.plan import FaultPlan
from repro.hardware.calibration import CostParameters, paper_calibration
from repro.hardware.spec import HardwareSpec, paper_testbed

#: Bump to invalidate every existing cache entry (serialization changes,
#: cost-model semantics changes that the calibration digest cannot see).
#: 2: keys gained a fault-plan component.
#: 3: keys gained a planner-mode component.
#: 4: keys gained a cluster-topology component.
#: 5: per-query profile-memo entries joined the store (catalog pricing and
#:    planner candidate estimates are memoized below the experiment level;
#:    experiment keys are unchanged in shape but rotate with the format).
#: 6: keys gained a sealed-storage component (``--storage`` budgets spill
#:    overflow to sealed untrusted storage; calibrations also grew the
#:    seal/unseal/IO constants, so pre-storage entries price differently).
#: 7: keys gained a backend component (``--backend sqlite|duckdb`` prices
#:    serving arms from calibrated engine profiles through the SGX cost
#:    envelope; ``None`` and ``"sim"`` key identically, so sim sessions
#:    share entries with default ones).
#: 8: keys gained a rewrite component (``--rewrite prove|race|learned``
#:    runs the logical-rewrite layer before physical planning; ``None``
#:    and ``"off"`` key identically, so pre-rewrite entries stay valid
#:    for default sessions while rewriting runs never alias them).
CACHE_FORMAT = 8


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-safe form with a stable rendering.

    Dataclasses (settings, calibrations, specs) and enums carry their type
    name so two structurally identical but semantically different objects
    never collide; dict keys must be strings (JSON cannot represent
    anything else losslessly).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if isinstance(value, dict):
        if not all(isinstance(key, str) for key in value):
            raise CacheError("cache-key dicts must have string keys")
        return {key: canonical(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CacheError(
        f"cannot build a canonical cache key from {type(value).__name__!r}"
    )


def fingerprint(**components: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``components``."""
    payload = json.dumps(
        {name: canonical(value) for name, value in components.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def calibration_digest(
    params: Optional[CostParameters] = None,
    spec: Optional[HardwareSpec] = None,
) -> str:
    """Digest of the calibration constants and hardware spec in effect.

    Part of every experiment key, so editing any constant (a
    ``dataclasses.replace`` calibration, a different testbed) automatically
    invalidates all results priced under the old model.
    """
    return fingerprint(
        params=params or paper_calibration(),
        spec=spec or paper_testbed(),
    )


def experiment_key(
    experiment_id: str,
    *,
    quick: bool,
    base_seed: int,
    traced: bool = False,
    params: Optional[CostParameters] = None,
    spec: Optional[HardwareSpec] = None,
    faults: Optional[FaultPlan] = None,
    planner: Optional[str] = None,
    cluster=None,
    storage=None,
    backend: Optional[str] = None,
    rewrite: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """The cache key of one experiment run.

    ``quick`` folds in the fidelity mode (repetition count and physical row
    caps), ``traced`` whether the entry must carry a replayable trace,
    ``faults`` the session fault plan (every spec and the plan seed hash
    into the key, so a faulted run never replays an un-faulted entry or
    vice versa), ``planner`` the session planner mode (``None`` and
    ``"static"`` key identically: both serve the historical static plans,
    so pre-planner entries stay valid for static sessions), ``cluster``
    the session cluster topology (a
    :class:`~repro.cluster.ClusterConfig`; every shard-map, routing,
    shard-fault, and elastic field hashes into the key, so a sharded run
    never replays a single-enclave entry or vice versa), ``storage`` the
    session sealed-storage config (a
    :class:`~repro.storage.StorageConfig`; the budget and block size both
    hash in, so a spilling run never replays an in-EPC entry or vice
    versa), ``backend`` the session backend mode (``None`` and ``"sim"``
    key identically: both serve the operator simulator, so pre-backends
    entries stay valid for sim sessions, while engine-priced runs never
    alias simulated ones), ``rewrite`` the session rewrite mode (``None``
    and ``"off"`` key identically: both serve the static logical plans,
    so pre-rewrite entries stay valid for default sessions, while
    rewriting runs never alias them), and ``extra`` any additional operator
    parameters a caller wants keyed (e.g. an
    :class:`~repro.enclave.runtime.ExecutionSetting`).
    """
    return fingerprint(
        format=CACHE_FORMAT,
        experiment=experiment_id,
        quick=bool(quick),
        base_seed=int(base_seed),
        traced=bool(traced),
        calibration=calibration_digest(params, spec),
        faults=faults,
        planner=planner if planner not in (None, "static") else "static",
        cluster=cluster,
        storage=storage,
        backend=backend if backend not in (None, "sim") else "sim",
        rewrite=rewrite if rewrite not in (None, "off") else "off",
        extra=extra or {},
    )


def query_profile_key(
    *,
    kind: str,
    template: Any,
    setting: Any,
    candidate: Any,
    pricing_seed: int,
    row_cap: int,
    sf_cap: float,
    params: Optional[CostParameters] = None,
    spec: Optional[HardwareSpec] = None,
    storage=None,
) -> str:
    """The memo key of one priced query profile or candidate estimate.

    This is the sub-experiment memoization level: a catalog pricing run or
    a planner candidate estimate is a pure function of the template (full
    logical shape including plan hints), the resolved physical plan
    candidate, the execution setting, the physical stand-in caps, the
    pricing seed, and the calibration digest — so two experiments (or two
    shards of one cluster run) asking for the same profile share one
    operator execution.  ``kind`` separates the caller vocabularies
    (``"catalog-price"`` returns seconds+footprint, ``"plan-estimate"``
    returns cycles breakdowns) so they can never alias.
    """
    return fingerprint(
        format=CACHE_FORMAT,
        kind=kind,
        template=template,
        setting=setting,
        candidate=candidate,
        pricing_seed=int(pricing_seed),
        row_cap=int(row_cap),
        sf_cap=float(sf_cap),
        calibration=calibration_digest(params, spec),
        storage=storage,
    )
