"""The per-query profile memo: sub-experiment operator-run memoization.

The experiment cache (:func:`~repro.cache.keys.experiment_key` +
:class:`~repro.cache.store.MemoStore`) replays whole experiments; this
module memoizes one level below it — the individual *pricing runs* the
serving stack performs through the real operators.  Two call sites feed
it:

* :meth:`repro.workload.jobs.JobCatalog._price` — a catalog prices every
  template once per setting (and once per planner candidate), executing
  the operators for real.  Every wl experiment builds fresh catalogs, so
  a five-experiment session re-prices the same templates five times.
* :func:`repro.planner.costing.estimate_candidate` — the planner prices
  every candidate of every template, and a clustered run builds one
  planner *per shard* (wl06: eight shards, eight identical enumerations).

Both are pure functions of ``(template, candidate, setting, stand-in
caps, pricing seed, calibration digest)`` — exactly what
:func:`~repro.cache.keys.query_profile_key` hashes — so a process-wide
memo collapses all that repeat work into dictionary lookups without
changing a single produced number.

Determinism contract: a memo hit returns byte-identical values to the
run it skipped, and pricing runs are *silent* (they execute under a
``NullTracer``), so memoized and unmemoized runs produce byte-identical
experiment artifacts.  Hit/miss counters surface only in the session
trace (``bench.memo.hits``/``bench.memo.misses``), the one documented
non-deterministic artifact.

The default memo is process-global, in-memory, and always on; ``with
use_profile_memo(None)`` disables it for a scope (the benchmark's cold
arm, byte-identity tests), and ``use_profile_memo(ProfileMemo(dir))``
installs a disk-backed tier that persists across processes (the session
driver points workers at ``<cache-dir>/profiles`` under ``--cache``).
"""

from __future__ import annotations

import pathlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Union

from repro.cache.store import MemoStore

#: The profile memo keeps more entries resident than the experiment store:
#: entries are tiny (a few floats) and a full-registry session touches a
#: few hundred distinct (template, setting, candidate) triples.
DEFAULT_PROFILE_ENTRIES = 512


class ProfileMemo:
    """A :class:`MemoStore` wrapper dedicated to per-query profiles.

    ``directory=None`` keeps the memo purely in-memory (the process-global
    default); with a directory, priced profiles persist across processes —
    spawned ``--jobs`` workers and repeat sessions share one warm tier.
    """

    enabled = True

    def __init__(
        self,
        directory: Optional[Union[str, pathlib.Path]] = None,
        *,
        memory_entries: int = DEFAULT_PROFILE_ENTRIES,
    ) -> None:
        self.store = MemoStore(directory, memory_entries=memory_entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self.store.get(key)

    def put(self, key: str, value: Dict[str, Any]) -> None:
        self.store.put(key, value)

    @property
    def hits(self) -> int:
        return self.store.hits

    @property
    def misses(self) -> int:
        return self.store.misses

    @property
    def stats(self) -> Dict[str, int]:
        return self.store.stats


class _DisabledMemo:
    """Sentinel installed by ``use_profile_memo(None)``: every lookup
    misses silently and nothing is stored (and nothing is counted — a
    disabled memo has no traffic to report)."""

    enabled = False
    hits = 0
    misses = 0
    stats: Dict[str, int] = {"hits": 0, "misses": 0, "entries": 0}

    def get(self, key: str) -> None:
        return None

    def put(self, key: str, value: Dict[str, Any]) -> None:
        return None


DISABLED_MEMO = _DisabledMemo()

#: The ambient memo.  Module-global like the tracer: pricing happens deep
#: inside operators' callers, and threading a memo argument through every
#: catalog/planner constructor would contaminate every signature.
_ACTIVE: Union[ProfileMemo, _DisabledMemo] = ProfileMemo()


def profile_memo() -> Union[ProfileMemo, _DisabledMemo]:
    """The memo pricing runs consult (possibly the disabled sentinel)."""
    return _ACTIVE


@contextmanager
def use_profile_memo(
    memo: Optional[ProfileMemo],
) -> Iterator[Union[ProfileMemo, _DisabledMemo]]:
    """Scope ``memo`` as the ambient profile memo (``None`` disables).

    Used by the engine benchmark's cold arm, the byte-identity tests, and
    the session driver (to point workers at a disk-backed tier).  Scopes
    nest and always restore, so a failed run cannot leak a disabled memo
    into the rest of the process.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = memo if memo is not None else DISABLED_MEMO
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
