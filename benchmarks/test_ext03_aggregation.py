"""Extension: hash group-by relative throughput vs group count."""


def test_ext03(run_figure):
    report = run_figure("ext03")
    # Cache-resident tables: the loop-execution penalty dominates and the
    # unroll optimization recovers most of it.
    assert report.value("naive", 1_000) < 0.5
    assert report.value("unrolled", 1_000) > 0.7
    # Spilled tables: random writes push both variants down further.
    assert report.value("naive", 10_000_000) < report.value("naive", 1_000)
    assert report.value("unrolled", 10_000_000) > report.value(
        "naive", 10_000_000
    )
