"""wl07: larger-than-EPC serving — sealed spill vs EDMM thrash.

Regenerates the larger-than-EPC extension of Fig. 11; the rendered table
lands in ``benchmarks/results/wl07.txt`` and the per-arm tails feed
``BENCH_storage.json``.
"""

from repro.bench.experiments.wl07_spill_scaleout import (
    BUDGET_FRACTIONS,
    SHARD_SPEC,
)


def test_wl07(run_figure, storage_scoreboard):
    report = run_figure("wl07")
    tight = BUDGET_FRACTIONS[-1]
    # The squeeze actually forces the spill regime, and the sealed path
    # beats the EDMM thrash path where the overflow is deep.
    assert report.value("spills", tight) > 0
    assert report.value("seal time", tight) > 0
    assert report.value("spill p99", tight) < report.value("edmm p99", tight)
    assert report.value("spill goodput", tight) > report.value(
        "edmm goodput", tight
    )
    # The fault arm exercised both storage hazards.
    assert report.value("stalled spills", "spill-faulted") > 0
    # Sharded serving still spills (locally, per shard).
    assert report.value("sharded spills", SHARD_SPEC) > 0
    storage_scoreboard(
        "wl07",
        [
            {
                "experiment": "wl07",
                "arm": f"spill {fraction:g}x",
                "p99": report.value("spill p99", fraction),
                "goodput": report.value("spill goodput", fraction),
                "spills": report.value("spills", fraction),
                "spilled_gb": report.value("spilled volume", fraction),
                "seal_s": report.value("seal time", fraction),
                "unseal_s": report.value("unseal time", fraction),
            }
            for fraction in BUDGET_FRACTIONS
        ]
        + [
            {
                "experiment": "wl07",
                "arm": f"edmm {fraction:g}x",
                "p99": report.value("edmm p99", fraction),
                "goodput": report.value("edmm goodput", fraction),
            }
            for fraction in BUDGET_FRACTIONS
        ]
        + [
            {
                "experiment": "wl07",
                "arm": "spill-faulted",
                "p99": report.value("faulted p99", "spill-faulted"),
                "spills": report.value("stalled spills", "spill-faulted"),
            },
            {
                "experiment": "wl07",
                "arm": f"sharded {SHARD_SPEC}",
                "p99": report.value("sharded p99", SHARD_SPEC),
                "spills": report.value("sharded spills", SHARD_SPEC),
            },
        ],
    )
