"""Figure 9: NUMA placement extremes for the RHO join.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig09.txt``.
"""


def test_fig09(run_figure):
    report = run_figure("fig09")
    base = report.value("SGX Join Single Node", "throughput")
    assert report.value("SGX Join Fully Remote", "throughput") < base
    assert base < 0.5 * report.value("Native Join NUMA local", "throughput")
