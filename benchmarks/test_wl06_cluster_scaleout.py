"""wl06: sharded multi-enclave scale-out, routing, failover, elasticity.

Regenerates the cluster-serving extrapolation of Table 1 + Figs. 3/9; the
rendered table lands in ``benchmarks/results/wl06.txt`` and the per-arm
tails feed ``BENCH_cluster.json``.
"""

from repro.bench.experiments.wl06_cluster_scaleout import SLO_MS

SWEEP_SHARDS = (1, 2, 4, 8)
ROUTINGS = ("hash", "load-aware")
CRASH_ARMS = ("failover", "no-failover")
ELASTIC_ARMS = ("elastic", "static-2")


def test_wl06(run_figure, cluster_scoreboard):
    report = run_figure("wl06")
    # The single-enclave baseline saturates while eight shards clear the
    # headline target: >=10k QPS inside a 25 ms p99 SLO.
    assert report.value("scale-out p99", 1) > 3 * SLO_MS
    assert report.value("scale-out achieved", 8) >= 10_000
    assert report.value("scale-out p99", 8) < SLO_MS
    # Failover keeps the crash window fully available.
    assert report.value("crash availability", "failover") == 1.0
    assert report.value("crash availability", "no-failover") < 1.0
    cluster_scoreboard(
        "wl06",
        [
            {
                "experiment": "wl06",
                "arm": f"scale-out {shards} shards",
                "p50": report.value("scale-out p50", shards),
                "p99": report.value("scale-out p99", shards),
                "goodput": report.value("scale-out goodput", shards),
                "slo_attainment": report.value(
                    "scale-out SLO attainment", shards
                ),
            }
            for shards in SWEEP_SHARDS
        ]
        + [
            {
                "experiment": "wl06",
                "arm": f"skew {routing}",
                "p99": report.value("skew p99", routing),
                "slo_attainment": report.value(
                    "skew SLO attainment", routing
                ),
            }
            for routing in ROUTINGS
        ]
        + [
            {
                "experiment": "wl06",
                "arm": f"crash {arm}",
                "p99": report.value("crash p99", arm),
                "goodput": report.value("crash goodput", arm),
                "availability": report.value("crash availability", arm),
            }
            for arm in CRASH_ARMS
        ]
        + [
            {
                "experiment": "wl06",
                "arm": f"elastic {arm}",
                "p99": report.value("elastic p99", arm),
                "slo_attainment": report.value(
                    "elastic SLO attainment", arm
                ),
            }
            for arm in ELASTIC_ARMS
        ],
    )
