"""Table 1: the simulated testbed's hardware rows.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/tab01.txt``.
"""


def test_tab01(run_figure):
    report = run_figure("tab01")
    assert report.value("Sockets", "count") == 2
