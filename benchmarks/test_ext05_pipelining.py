"""Extension: materializing vs pipelined execution, static vs EDMM enclave."""


def test_ext05(run_figure):
    report = run_figure("ext05")
    for query in ("Q3", "Q12"):
        static_mat = report.value("materializing, static enclave", query)
        static_pipe = report.value("pipelined, static enclave", query)
        edmm_mat = report.value("materializing, EDMM enclave", query)
        edmm_pipe = report.value("pipelined, EDMM enclave", query)
        # Statically sized: pipelining buys almost nothing (writes are cheap
        # in SGXv2), confirming the paper's materializing scheme loses little.
        assert static_pipe <= static_mat
        assert (static_mat - static_pipe) / static_mat < 0.1
        # Dynamically sized: EDMM dominates (the Fig. 11 lesson at query
        # scale) and pipelining recovers a visible share on Q3.
        assert edmm_mat > 5 * static_mat
        assert edmm_pipe <= edmm_mat
    q3_saving = 1 - report.value("pipelined, EDMM enclave", "Q3") / report.value(
        "materializing, EDMM enclave", "Q3"
    )
    assert q3_saving > 0.08
