"""wl04: serving under injected faults, resilience on vs off.

Regenerates the fault-resilience extension of Fig. 11 / Sec. 6; the
rendered table lands in ``benchmarks/results/wl04.txt``.
"""


def test_wl04(run_figure):
    report = run_figure("wl04")
    base = report.value("baseline latency", 99)
    faults = report.value("faults latency", 99)
    mitigated = report.value("mitigated latency", 99)
    assert faults > 3 * base
    assert mitigated <= base + 0.5 * (faults - base)  # >=50% gap recovered
    assert report.value("goodput", "mitigated") > report.value("goodput", "faults")
