"""Ablation: pre-allocation slack vs EDMM cost across result sizes.

Fig. 11 shows the worst case (the whole output grows the enclave).  This
sweep varies how much of the materialized result the statically committed
heap already covers, mapping the gradual transition from "free" to the
4.5 % collapse — the sizing guidance a deployment actually needs.
"""

from repro.bench.report import ExperimentReport
from repro.core.joins import RadixJoin
from repro.enclave.enclave import EnclaveConfig
from repro.enclave.runtime import ExecutionSetting
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair
from repro.units import GiB, MiB

#: Fraction of the output volume covered by pre-allocated heap.
COVERAGE = (1.0, 0.75, 0.5, 0.25, 0.0)

#: Logical output volume of the canonical join (50 M matches x 12 B).
OUTPUT_BYTES = int(50_000_000 * 12)


def run_ablation() -> ExperimentReport:
    report = ExperimentReport(
        "ablation-edmm-result-size",
        "Throughput vs pre-allocated share of the materialized output",
        "Sec. 4.4 / Fig. 11 (design-choice ablation)",
    )
    build, probe = generate_join_relation_pair(
        100e6, 400e6, seed=37, physical_row_cap=120_000
    )
    inputs = int(build.logical_bytes + probe.logical_bytes)
    scratch = inputs
    for coverage in COVERAGE:
        machine = SimMachine()
        heap = inputs + scratch + int(coverage * OUTPUT_BYTES) + 16 * MiB
        config = EnclaveConfig(
            heap_bytes=heap, node=0, dynamic=True, max_bytes=32 * GiB
        )
        with machine.context(
            ExecutionSetting.sgx_data_in_enclave(),
            threads=16,
            enclave_config=config,
        ) as ctx:
            result = RadixJoin(CodeVariant.UNROLLED).run(
                ctx, build, probe, materialize=True
            )
        report.add(
            "SGX optimized RHO (materializing)", coverage,
            result.throughput_rows_per_s(machine.frequency_hz) / 1e6,
            "M rows/s",
        )
    return report


def test_ablation_edmm_result_size(benchmark, results_dir):
    report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    (results_dir / "ablation_edmm_result_size.txt").write_text(
        report.print_table() + "\n"
    )
    print()
    print(report.print_table())
    series = "SGX optimized RHO (materializing)"
    values = [report.value(series, c) for c in COVERAGE]
    # Monotone: less pre-allocation can only hurt.
    assert all(a >= b * 0.999 for a, b in zip(values, values[1:]))
    # Full pre-allocation vs none spans the Fig. 11 collapse.
    assert values[-1] < 0.1 * values[0]
