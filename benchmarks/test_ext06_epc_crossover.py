"""Extension: the EPC-capacity crossover between CrkJoin and RHO."""


def test_ext06(run_figure):
    report = run_figure("ext06")
    # Tiny EPC: CrkJoin's paging avoidance wins (the SGXv1 world).
    assert report.value("CrkJoin", 64) > 3 * report.value("RHO", 64)
    # Ample EPC: the radix join wins decisively (the SGXv2 world).
    assert report.value("RHO", 8192) > 2 * report.value("CrkJoin", 8192)
    # The crossover exists and is monotone in between: RHO never falls
    # back behind once ahead.
    ahead = False
    for epc in (64, 128, 256, 512, 1024, 2048, 8192):
        if report.value("RHO", epc) > report.value("CrkJoin", epc):
            ahead = True
        elif ahead:
            raise AssertionError(f"RHO fell back behind at {epc} MB")
    assert ahead
