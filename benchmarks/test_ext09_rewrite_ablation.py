"""ext09: rewrite ablation — off/prove/race/learned on both platforms.

Prices the four ``--rewrite`` modes per TPC-H template past the legacy
EPC cliff; the rendered table lands in ``benchmarks/results/ext09.txt``
and the per-query speedups feed ``BENCH_rewrite.json``.
"""

from repro.bench.experiments.ext09_rewrite_ablation import QUICK_QUERIES


def test_ext09(run_figure, rewrite_scoreboard):
    report = run_figure("ext09")
    for platform in ("SGXv2", "SGXv1"):
        for query in QUICK_QUERIES:
            # Exact equivalence gate: nothing races without an accepted
            # proof, and the proofs actually ran (witness rows > 0).
            assert report.value(f"{platform} proved", query) > 0
            # off/prove/race are observation-only: identical served time.
            off = report.value(f"{platform} off", query)
            assert report.value(f"{platform} prove", query) == off
            assert report.value(f"{platform} race", query) == off
            # Learned never serves a slower plan than the reference.
            assert report.value(f"{platform} learned", query) <= off
            # Feedback closes the estimate error once actuals observe.
            assert report.value(
                f"{platform} q-error corrected", query
            ) <= report.value(f"{platform} q-error raw", query)
    # The unsound Q10 candidate is rejected on every platform.
    assert report.value("SGXv2 rejected", "Q10") >= 1
    assert report.value("SGXv1 rejected", "Q10") >= 1
    # The headline acceptance bar: on the legacy platform at least one
    # template's learned winner beats the static logical plan >= 1.3x.
    best_sgxv1 = max(
        report.value("SGXv1 speedup", query) for query in QUICK_QUERIES
    )
    assert best_sgxv1 >= 1.3
    # The proof ledger is platform-independent (equivalence is logical).
    for query in QUICK_QUERIES:
        assert report.value("SGXv2 proved", query) == report.value(
            "SGXv1 proved", query
        )
    rewrite_scoreboard(
        "ext09",
        [
            {
                "experiment": "ext09",
                "arm": f"{platform} {query}",
                "off_ms": report.value(f"{platform} off", query),
                "learned_ms": report.value(f"{platform} learned", query),
                "speedup": report.value(f"{platform} speedup", query),
                "proved": report.value(f"{platform} proved", query),
                "rejected": report.value(f"{platform} rejected", query),
                "q_error_raw": report.value(f"{platform} q-error raw", query),
                "q_error_corrected": report.value(
                    f"{platform} q-error corrected", query
                ),
            }
            for platform in ("SGXv2", "SGXv1")
            for query in QUICK_QUERIES
        ],
    )
