"""Benchmark plumbing: run one experiment per bench, save + print its table.

``pytest benchmarks/ --benchmark-only`` regenerates every figure/table of
the paper in quick fidelity (3 repetitions, capped physical data).  Set
``REPRO_BENCH_FULL=1`` for paper fidelity (10 repetitions, larger data).
Each bench writes its rendered table to ``benchmarks/results/<id>.txt`` and
echoes it to stdout (visible with ``-s``).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.bench.registry import run_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SCOREBOARD = RESULTS_DIR / "BENCH_planner.json"

CLUSTER_SCOREBOARD = RESULTS_DIR / "BENCH_cluster.json"

ENGINE_SCOREBOARD = RESULTS_DIR / "BENCH_engine.json"

STORAGE_SCOREBOARD = RESULTS_DIR / "BENCH_storage.json"

BACKENDS_SCOREBOARD = RESULTS_DIR / "BENCH_backends.json"

REWRITE_SCOREBOARD = RESULTS_DIR / "BENCH_rewrite.json"

FULL_FIDELITY = os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_figure(benchmark, results_dir):
    """Benchmark one experiment and persist its report."""

    def _run(experiment_id: str):
        report = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"quick": not FULL_FIDELITY},
            rounds=1,
            iterations=1,
        )
        text = report.print_table()
        (results_dir / f"{experiment_id}.txt").write_text(text + "\n")
        (results_dir / f"{experiment_id}.csv").write_text(report.to_csv() + "\n")
        print()
        print(text)
        return report

    return _run


@pytest.fixture
def planner_scoreboard(results_dir):
    """Read-modify-write ``BENCH_planner.json``, the planner perf trajectory.

    Each entry is ``{experiment, arm, p50, p99, goodput, ...}`` (``None``
    where a metric does not apply); a bench replaces its own experiment's
    entries and leaves the others, so partial reruns keep the file whole.
    Future PRs regress against these numbers.
    """

    def _update(experiment_id: str, entries):
        existing = []
        if SCOREBOARD.exists():
            existing = json.loads(SCOREBOARD.read_text())
        kept = [e for e in existing if e["experiment"] != experiment_id]
        for entry in entries:
            entry.setdefault("p50", None)
            entry.setdefault("p99", None)
            entry.setdefault("goodput", None)
        merged = sorted(
            kept + list(entries), key=lambda e: (e["experiment"], e["arm"])
        )
        SCOREBOARD.write_text(json.dumps(merged, indent=2) + "\n")
        return merged

    return _update


@pytest.fixture
def cluster_scoreboard(results_dir):
    """Read-modify-write ``BENCH_cluster.json``, the cluster perf trajectory.

    Same contract as ``planner_scoreboard``: each entry is
    ``{experiment, arm, ...metrics}`` with ``None`` where a metric does
    not apply, a bench replaces only its own experiment's entries, and the
    merged file stays sorted so reruns are byte-stable.
    """

    def _update(experiment_id: str, entries):
        existing = []
        if CLUSTER_SCOREBOARD.exists():
            existing = json.loads(CLUSTER_SCOREBOARD.read_text())
        kept = [e for e in existing if e["experiment"] != experiment_id]
        for entry in entries:
            entry.setdefault("p50", None)
            entry.setdefault("p99", None)
            entry.setdefault("goodput", None)
            entry.setdefault("availability", None)
            entry.setdefault("slo_attainment", None)
        merged = sorted(
            kept + list(entries), key=lambda e: (e["experiment"], e["arm"])
        )
        CLUSTER_SCOREBOARD.write_text(json.dumps(merged, indent=2) + "\n")
        return merged

    return _update


@pytest.fixture
def storage_scoreboard(results_dir):
    """Read-modify-write ``BENCH_storage.json``, the spill-path trajectory.

    Same contract as ``cluster_scoreboard``: each entry is
    ``{experiment, arm, ...metrics}`` with ``None`` where a metric does
    not apply (here the extra metrics are ``spills``, ``spilled_gb``,
    ``seal_s``, ``unseal_s``), a bench replaces only its own experiment's
    entries, and the merged file stays sorted so reruns are byte-stable.
    """

    def _update(experiment_id: str, entries):
        existing = []
        if STORAGE_SCOREBOARD.exists():
            existing = json.loads(STORAGE_SCOREBOARD.read_text())
        kept = [e for e in existing if e["experiment"] != experiment_id]
        for entry in entries:
            entry.setdefault("p50", None)
            entry.setdefault("p99", None)
            entry.setdefault("goodput", None)
            entry.setdefault("spills", None)
            entry.setdefault("spilled_gb", None)
            entry.setdefault("seal_s", None)
            entry.setdefault("unseal_s", None)
        merged = sorted(
            kept + list(entries), key=lambda e: (e["experiment"], e["arm"])
        )
        STORAGE_SCOREBOARD.write_text(json.dumps(merged, indent=2) + "\n")
        return merged

    return _update


@pytest.fixture
def backends_scoreboard(results_dir):
    """Read-modify-write ``BENCH_backends.json``, the backend-arm trajectory.

    Same contract as ``storage_scoreboard``: each entry is
    ``{experiment, arm, ...metrics}`` with ``None`` where a metric does
    not apply (here the metrics are per-template ``overhead`` ratios plus
    the envelope's ``init_share``), a bench replaces only its own
    experiment's entries, and the merged file stays sorted so reruns are
    byte-stable.
    """

    def _update(experiment_id: str, entries):
        existing = []
        if BACKENDS_SCOREBOARD.exists():
            existing = json.loads(BACKENDS_SCOREBOARD.read_text())
        kept = [e for e in existing if e["experiment"] != experiment_id]
        for entry in entries:
            entry.setdefault("overhead", None)
            entry.setdefault("init_share", None)
        merged = sorted(
            kept + list(entries), key=lambda e: (e["experiment"], e["arm"])
        )
        BACKENDS_SCOREBOARD.write_text(json.dumps(merged, indent=2) + "\n")
        return merged

    return _update


@pytest.fixture
def rewrite_scoreboard(results_dir):
    """Read-modify-write ``BENCH_rewrite.json``, the rewrite trajectory.

    Same contract as ``backends_scoreboard``: each entry is
    ``{experiment, arm, ...metrics}`` with ``None`` where a metric does
    not apply (here the metrics are the ablation's priced times and
    ``speedup``/``proved``/``rejected``/Q-error columns plus the serving
    tails and ``gap_recovered``), a bench replaces only its own
    experiment's entries, and the merged file stays sorted so reruns are
    byte-stable.
    """

    def _update(experiment_id: str, entries):
        existing = []
        if REWRITE_SCOREBOARD.exists():
            existing = json.loads(REWRITE_SCOREBOARD.read_text())
        kept = [e for e in existing if e["experiment"] != experiment_id]
        for entry in entries:
            entry.setdefault("p50", None)
            entry.setdefault("p99", None)
            entry.setdefault("goodput", None)
            entry.setdefault("off_ms", None)
            entry.setdefault("learned_ms", None)
            entry.setdefault("speedup", None)
            entry.setdefault("proved", None)
            entry.setdefault("rejected", None)
            entry.setdefault("q_error_raw", None)
            entry.setdefault("q_error_corrected", None)
            entry.setdefault("gap_recovered", None)
        merged = sorted(
            kept + list(entries), key=lambda e: (e["experiment"], e["arm"])
        )
        REWRITE_SCOREBOARD.write_text(json.dumps(merged, indent=2) + "\n")
        return merged

    return _update


@pytest.fixture
def engine_scoreboard(results_dir):
    """Read-modify-write ``BENCH_engine.json``, the engine's wall-clock speed.

    Same contract as the other scoreboards, but the metrics are about the
    harness itself: ``simulated_qps`` (simulated completed queries per
    wall-clock second), ``wall_s``, ``queries``, and ``speedup_vs_cold``.
    CI regresses fresh numbers against the committed file.
    """

    def _update(experiment_id: str, entries):
        existing = []
        if ENGINE_SCOREBOARD.exists():
            existing = json.loads(ENGINE_SCOREBOARD.read_text())
        kept = [e for e in existing if e["experiment"] != experiment_id]
        merged = sorted(
            kept + list(entries), key=lambda e: (e["experiment"], e["arm"])
        )
        ENGINE_SCOREBOARD.write_text(json.dumps(merged, indent=2) + "\n")
        return merged

    return _update
