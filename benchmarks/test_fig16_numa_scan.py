"""Figure 16: cross-NUMA scans with UPI encryption.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig16.txt``.
"""


def test_fig16(run_figure):
    report = run_figure("fig16")
    rel1 = report.value("SGX, cross-NUMA", 1) / report.value("plain, cross-NUMA", 1)
    rel16 = report.value("SGX, cross-NUMA", 16) / report.value("plain, cross-NUMA", 16)
    assert rel1 < rel16  # the gap closes as the UPI saturates
