"""wl05: serving under EPC squeeze, adaptive planner vs static plans.

Regenerates the serving-layer consequence of Fig. 3/8/11; the rendered
table lands in ``benchmarks/results/wl05.txt`` and the per-arm tails
feed ``BENCH_planner.json``.
"""

ARMS = ("static-native", "cost", "adaptive", "oracle")


def test_wl05(run_figure, planner_scoreboard):
    report = run_figure("wl05")
    static = report.value("static-native latency", 99)
    oracle = report.value("oracle latency", 99)
    adaptive = report.value("adaptive latency", 99)
    assert static > 2 * oracle  # the squeeze must actually bite
    assert adaptive <= static - 0.5 * (static - oracle)  # >=50% recovered
    assert report.value("goodput", "adaptive") >= report.value(
        "goodput", "static-native"
    )
    planner_scoreboard(
        "wl05",
        [
            {
                "experiment": "wl05",
                "arm": arm,
                "p50": report.value(f"{arm} latency", 50),
                "p99": report.value(f"{arm} latency", 99),
                "goodput": report.value("goodput", arm),
            }
            for arm in ARMS
        ],
    )
