"""Ablation: task granularity x queue choice (the Fig. 10 design space).

The mutex collapse of Fig. 10 only strikes when tasks are small.  This
sweep shows where the cliff lies: with coarse tasks even the SDK mutex is
harmless inside the enclave; as the fan-out grows, the mutex queue's
throughput collapses while the lock-free queue barely moves.
"""

from repro.bench.report import ExperimentReport
from repro.core.joins import RadixJoin
from repro.enclave.runtime import ExecutionSetting
from repro.enclave.sync import LockKind
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair

BIT_SWEEP = (8, 11, 14, 17)


def run_ablation() -> ExperimentReport:
    report = ExperimentReport(
        "ablation-task-granularity",
        "Queue choice vs task granularity inside the enclave",
        "Sec. 4.4 / Fig. 10 (design-choice ablation)",
    )
    build, probe = generate_join_relation_pair(
        100e6, 400e6, seed=31, physical_row_cap=120_000
    )
    for bits in BIT_SWEEP:
        for queue in (LockKind.LOCK_FREE, LockKind.SDK_MUTEX):
            machine = SimMachine()
            join = RadixJoin(
                CodeVariant.UNROLLED, radix_bits=bits, queue_kind=queue
            )
            with machine.context(
                ExecutionSetting.sgx_data_in_enclave(), threads=16
            ) as ctx:
                result = join.run(ctx, build, probe)
            report.add(
                f"SGX + {queue.value}", bits,
                result.throughput_rows_per_s(machine.frequency_hz) / 1e6,
                "M rows/s",
            )
    return report


def test_ablation_task_granularity(benchmark, results_dir):
    report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    (results_dir / "ablation_task_granularity.txt").write_text(
        report.print_table() + "\n"
    )
    print()
    print(report.print_table())

    def ratio(bits):
        return report.value("SGX + sdk_mutex", bits) / report.value(
            "SGX + lock_free", bits
        )

    # Coarse tasks: queue choice nearly irrelevant even inside the enclave.
    assert ratio(8) > 0.9
    # Fine tasks: the mutex collapse of Fig. 10.
    assert ratio(17) < 0.4
    # Monotone decline in between.
    assert ratio(8) > ratio(11) > ratio(14) > ratio(17)
