"""Figure 1: CrkJoin vs RHO vs optimized RHO vs native (headline).

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig01.txt``.
"""


def test_fig01(run_figure):
    report = run_figure("fig01")
    crk = report.value("CrkJoin (SGXv1-opt.) in SGX", "throughput")
    opt = report.value("RHO SGXv2-optimized in SGX", "throughput")
    native = report.value("RHO outside enclave", "throughput")
    assert crk < opt < native
    assert opt / crk > 15  # paper: ~20x
