"""Figure 17: TPC-H Q3/Q10/Q12/Q19, three configurations.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig17.txt``.
"""


def test_fig17(run_figure):
    report = run_figure("fig17")
    for query in ("Q3", "Q10", "Q12", "Q19"):
        assert report.value("plain CPU", query) < report.value(
            "SGX optimized", query) < report.value("SGX", query)
