"""Figure 4: single-threaded PHT vs build size + phase split.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig04.txt``.
"""


def test_fig04(run_figure):
    report = run_figure("fig04")
    series = [row.value for row in report.series("SGX relative throughput")]
    assert series[0] > 0.9 and series[-1] < 0.5
