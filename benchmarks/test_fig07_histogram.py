"""Figure 7: radix-histogram micro-benchmark, three settings.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig07.txt``.
"""


def test_fig07(run_figure):
    report = run_figure("fig07")
    naive = report.value("naive: SGX (Data in Enclave)", 256)
    plain = report.value("naive: Plain CPU", 256)
    assert 2.8 < naive / plain < 3.8  # paper: 3.25x
