"""Ablation: NUMA placement policy sweep for the optimized RHO join.

Fig. 9 measures the extremes; this ablation fills in the policy space an
operator could actually choose between when SGX denies affinity control:
local threads, remote threads, all cores, and half the local socket —
quantifying what each placement costs relative to the local optimum.
"""

from repro.bench.report import ExperimentReport
from repro.core.joins import RadixJoin
from repro.enclave.runtime import ExecutionSetting
from repro.exec.placement import Placement
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair


def run_ablation() -> ExperimentReport:
    report = ExperimentReport(
        "ablation-numa-placement",
        "RHO throughput across NUMA placement policies (SGX, optimized)",
        "Sec. 4.3 (design-choice ablation)",
    )
    build, probe = generate_join_relation_pair(
        100e6, 400e6, seed=41, physical_row_cap=120_000
    )
    policies = (
        ("16 local threads", lambda m: Placement.on_node(m.topology, 0, 16)),
        ("8 local threads", lambda m: Placement.on_node(m.topology, 0, 8)),
        ("16 remote threads", lambda m: Placement.on_node(m.topology, 1, 16)),
        ("32 threads (both sockets)", lambda m: Placement.all_cores(m.topology)),
    )
    for label, build_placement in policies:
        machine = SimMachine()
        placement = build_placement(machine)
        with machine.context(
            ExecutionSetting.sgx_data_in_enclave(),
            data_node=0,
            placement=placement,
        ) as ctx:
            result = RadixJoin(CodeVariant.UNROLLED).run(ctx, build, probe)
        report.add(
            label, "throughput",
            result.throughput_rows_per_s(machine.frequency_hz) / 1e6,
            "M rows/s",
        )
    return report


def test_ablation_numa_placement(benchmark, results_dir):
    report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    (results_dir / "ablation_numa_placement.txt").write_text(
        report.print_table() + "\n"
    )
    print()
    print(report.print_table())
    local16 = report.value("16 local threads", "throughput")
    local8 = report.value("8 local threads", "throughput")
    remote16 = report.value("16 remote threads", "throughput")
    both32 = report.value("32 threads (both sockets)", "throughput")
    # Local threads scale; remote threads lose to UPI latency/bandwidth.
    assert local16 > local8
    assert remote16 < local16
    # Adding the remote socket's cores never beats staying local (Fig. 9),
    # and 16 remote threads still beat only 8 local ones at best.
    assert both32 < local16 * 1.05
