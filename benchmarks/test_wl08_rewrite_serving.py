"""wl08: serving with learned rewrites under an EPC squeeze.

Regenerates the rewrite subsystem's serving-layer payoff; the rendered
table lands in ``benchmarks/results/wl08.txt`` and the per-arm tails
feed ``BENCH_rewrite.json``.
"""

ARMS = ("static", "adaptive", "adaptive+learned", "oracle")


def test_wl08(run_figure, rewrite_scoreboard):
    report = run_figure("wl08")
    static_p99 = report.value("static latency", 99)
    oracle_p99 = report.value("oracle latency", 99)
    adaptive_p99 = report.value("adaptive latency", 99)
    learned_p99 = report.value("adaptive+learned latency", 99)
    # The squeeze actually hurts the static arm, and the learned arm
    # recovers a measurable share of the static-to-oracle p99 gap — at
    # least as much as plain adaptive does without the rewrite arms.
    gap = static_p99 - oracle_p99
    assert gap > 0
    recovered = (static_p99 - learned_p99) / gap
    assert recovered >= 0.2
    assert learned_p99 <= adaptive_p99
    # Goodput never regresses for the planned arms.
    assert report.value("goodput", "adaptive+learned") >= report.value(
        "goodput", "static"
    )
    rewrite_scoreboard(
        "wl08",
        [
            {
                "experiment": "wl08",
                "arm": arm,
                "p50": report.value(f"{arm} latency", 50),
                "p99": report.value(f"{arm} latency", 99),
                "goodput": report.value("goodput", arm),
                "gap_recovered": (
                    (static_p99 - report.value(f"{arm} latency", 99)) / gap
                ),
            }
            for arm in ARMS
        ],
    )
