"""Figure 14: row-id scan with varying selectivity (write rate).

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig14.txt``.
"""


def test_fig14(run_figure):
    report = run_figure("fig14")
    drop_sgx = report.value("SGX (Data in Enclave)", 1.0) / report.value(
        "SGX (Data in Enclave)", 0.0)
    drop_plain = report.value("Plain CPU", 1.0) / report.value("Plain CPU", 0.0)
    assert abs(drop_sgx - drop_plain) < 0.05
