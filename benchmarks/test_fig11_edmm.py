"""Figure 11: static vs EDMM-growing enclave under materialization.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig11.txt``.
"""


def test_fig11(run_figure):
    report = run_figure("fig11")
    ratio = report.value("dynamic enclave", "throughput") / report.value(
        "static enclave", "throughput")
    assert ratio < 0.1  # paper: 0.045
