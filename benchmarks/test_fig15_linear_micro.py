"""Figure 15: pmbw-style 64/512-bit linear reads and writes.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig15.txt``.
"""


def test_fig15(run_figure):
    report = run_figure("fig15")
    assert report.value("read_64", 8e9) < report.value("write_64", 8e9)
