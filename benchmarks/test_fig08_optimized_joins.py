"""Figure 8: RHO and PHT with/without the optimization, 16 threads.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig08.txt``.
"""


def test_fig08(run_figure):
    report = run_figure("fig08")
    assert report.value("SGX optimized", "RHO") > 1.4 * report.value("SGX naive", "RHO")
