"""ext08: engine-in-enclave vs operator-in-enclave overhead.

Regenerates the whole-engine-port comparison (DuckDB-SGX2-style arms
priced through the SGX cost envelope, behind the cross-backend
equivalence gate); the rendered table lands in
``benchmarks/results/ext08.txt`` and the per-arm overheads feed
``BENCH_backends.json``.
"""

from repro.backends.config import missing_reason
from repro.bench.experiments.ext08_engine_vs_operator import TEMPLATE_NAMES


def test_ext08(run_figure, backends_scoreboard):
    report = run_figure("ext08")
    # The gate ran before any timing, on every template.
    assert any("equivalence gate passed" in note for note in report.notes)
    for name in TEMPLATE_NAMES:
        for platform in ("SGXv2", "SGXv1"):
            operator = report.value(f"{platform} operator", name)
            engine = report.value(f"{platform} sqlite engine", name)
            # In-enclave never beats plain on either arm.
            assert operator >= 1.0
            assert engine >= 1.0
            # SGXv1's smaller EPC + paging makes both arms strictly
            # worse than on SGXv2.
            if platform == "SGXv1":
                assert engine > report.value("SGXv2 sqlite engine", name)
        # The init term exists but never dominates a whole query.
        share = report.value("SGXv2 sqlite init share", name)
        assert 0.0 < share < 0.5
    # The engine's buffer-pool working sets pay more than the operators'
    # tight footprints on the TPC-H plans under the legacy EPC.
    assert report.value("SGXv1 sqlite engine", "q12") > report.value(
        "SGXv1 operator", "q12"
    )
    if missing_reason("duckdb") is not None:
        assert any("duckdb" in note for note in report.notes)
    entries = []
    for name in TEMPLATE_NAMES:
        for platform in ("SGXv2", "SGXv1"):
            entries.append(
                {
                    "experiment": "ext08",
                    "arm": f"{platform} operator {name}",
                    "overhead": report.value(f"{platform} operator", name),
                }
            )
            entries.append(
                {
                    "experiment": "ext08",
                    "arm": f"{platform} sqlite {name}",
                    "overhead": report.value(f"{platform} sqlite engine", name),
                    "init_share": report.value(
                        f"{platform} sqlite init share", name
                    ),
                }
            )
    backends_scoreboard("ext08", entries)
