"""Figure 6: RHO phase breakdown, naive vs unrolled.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig06.txt``.
"""


def test_fig06(run_figure):
    report = run_figure("fig06")
    assert report.value("naive: sgx slowdown", "hist1") > 3
    assert report.value("unrolled: sgx slowdown", "hist1") < 1.5
