"""ext07: planner ablation — oracle vs cost-based vs native-best.

Sweeps the FK join across the EPC crossover on both platforms; the
rendered table lands in ``benchmarks/results/ext07.txt`` and the policy
throughputs feed ``BENCH_planner.json``.
"""


def test_ext07(run_figure, planner_scoreboard):
    report = run_figure("ext07")
    # The headline acceptance bar: cost picks the oracle arm on >= 90 %
    # of sweep points, on both platforms.
    for platform in ("SGXv2", "SGXv1"):
        assert report.value(f"{platform} match rate", "all") >= 0.9
    # The CrkJoin/RHO crossover (legacy platform): RHO-unrolled wins while
    # the working set fits the ~93 MB EPC, CrkJoin by ~6x once it pages.
    assert report.value("SGXv1 RHO-unrolled", 4) > report.value("SGXv1 CrkJoin", 4)
    assert report.value("SGXv1 CrkJoin", 128) > 3 * report.value(
        "SGXv1 RHO-unrolled", 128
    )
    # On SGXv2 the 64 GB EPC hides the working set: no crossover.
    assert report.value("SGXv2 RHO-unrolled", 128) > report.value(
        "SGXv2 CrkJoin", 128
    )
    planner_scoreboard(
        "ext07",
        [
            {
                "experiment": "ext07",
                "arm": f"{platform} {policy}",
                "throughput_mrows": report.value(f"{platform} {policy}", 128),
                "match_rate": report.value(f"{platform} match rate", "all"),
            }
            for platform in ("SGXv2", "SGXv1")
            for policy in ("oracle", "cost", "native-best")
        ],
    )
