"""Extension: PHT under Zipf-skewed probe keys."""


def test_ext04(run_figure):
    report = run_figure("ext04")
    relatives = [
        report.value("SGX relative to plain", theta)
        for theta in (0.0, 0.8, 1.25)
    ]
    # Skew improves relative in-enclave performance monotonically.
    assert relatives[0] <= relatives[1] <= relatives[2]
    # Absolute throughput also rises (the hot set caches for both modes).
    assert report.value("SGX throughput", 1.25) > report.value(
        "SGX throughput", 0.0
    )
