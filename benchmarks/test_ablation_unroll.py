"""Ablation: how far does each code variant carry each join?

Sweeps all three code variants (naive / 8x unrolled / AVX-assisted) over
the two hash joins inside the enclave — the design choice behind the
paper's headline optimization (Sec. 4.2).  Expected ordering per join:
naive < unrolled <= simd, with RHO gaining relatively more than PHT on the
loop side and PHT gaining more on the random-write side.
"""

import pytest

from repro.bench.report import ExperimentReport
from repro.core.joins import ParallelHashJoin, RadixJoin
from repro.enclave.runtime import ExecutionSetting
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair


def run_ablation() -> ExperimentReport:
    report = ExperimentReport(
        "ablation-unroll",
        "Code-variant ablation for RHO and PHT inside the enclave",
        "Sec. 4.2 (design-choice ablation)",
    )
    build, probe = generate_join_relation_pair(
        100e6, 400e6, seed=13, physical_row_cap=150_000
    )
    for join_cls in (RadixJoin, ParallelHashJoin):
        for variant in CodeVariant:
            machine = SimMachine()
            with machine.context(
                ExecutionSetting.sgx_data_in_enclave(), threads=16
            ) as ctx:
                result = join_cls(variant).run(ctx, build, probe)
            report.add(
                join_cls.name,
                variant.value,
                result.throughput_rows_per_s(machine.frequency_hz) / 1e6,
                "M rows/s",
            )
    return report


def test_ablation_unroll(benchmark, results_dir):
    report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    (results_dir / "ablation_unroll.txt").write_text(report.print_table() + "\n")
    print()
    print(report.print_table())
    for name in ("RHO", "PHT"):
        naive = report.value(name, "naive")
        unrolled = report.value(name, "unrolled")
        simd = report.value(name, "simd")
        assert naive < unrolled <= simd * 1.001
    # SIMD unrolling buys RHO a further visible step (Sec. 4.2).
    assert report.value("RHO", "simd") > report.value("RHO", "unrolled")


def test_variants_equal_outside_enclave(benchmark):
    """The optimization is enclave-specific: no effect on the plain CPU."""

    def run() -> float:
        build, probe = generate_join_relation_pair(
            100e6, 400e6, seed=13, physical_row_cap=100_000
        )
        values = []
        for variant in CodeVariant:
            machine = SimMachine()
            with machine.context(ExecutionSetting.plain_cpu(), threads=16) as ctx:
                result = RadixJoin(variant).run(ctx, build, probe)
            values.append(result.throughput_rows_per_s(machine.frequency_hz))
        return max(values) / min(values)

    spread = benchmark.pedantic(run, rounds=1, iterations=1)
    assert spread == pytest.approx(1.0, abs=0.02)
