"""BENCH_engine: wall-clock simulated-queries/sec of the serving engine.

Three arms over the same wl01-scale serving pass (see
:mod:`repro.bench.enginebench`): ``serial-cold`` with the profile memo
disabled, ``serial-warm`` from a primed memo, and ``jobs2-warm`` across
two spawned workers sharing one disk memo tier.  The bench asserts the
engine's two load-bearing claims — the warm pass is byte-identical to
the cold pass, and at least 5x faster — and persists the trajectory to
``benchmarks/results/BENCH_engine.json`` for CI's regression gate.
"""

from __future__ import annotations

import pytest

from repro.bench.enginebench import engine_pass, run_jobs_arm, scoreboard_entries
from repro.cache import ProfileMemo, use_profile_memo

#: ISSUE acceptance floor: memoization+vectorization must buy >= 5x on a
#: wl01-scale serving pass once the memo is warm.
MIN_WARM_SPEEDUP = 5.0


def test_engine_speed(benchmark, engine_scoreboard, tmp_path):
    memo_dir = tmp_path / "profiles"

    # Arm 1: serial-cold — every pass re-prices through the operators.
    with use_profile_memo(None):
        cold = engine_pass()

    # Arm 2: serial-warm — prime the memo (also fills the disk tier the
    # jobs arm below shares), then measure the memoized pass.
    memo = ProfileMemo(memo_dir)
    with use_profile_memo(memo):
        engine_pass()  # priming pass
        warm = benchmark.pedantic(engine_pass, rounds=1, iterations=1)

    # The memo is a pure wall-clock optimization: the warm pass must
    # reproduce the cold pass exactly, and must actually have hit.
    assert warm.completed == cold.completed
    assert warm.p99_ms == cold.p99_ms
    assert memo.hits > 0
    assert warm.simulated_qps >= MIN_WARM_SPEEDUP * cold.simulated_qps, (
        f"warm arm {warm.simulated_qps:.0f} qps is under "
        f"{MIN_WARM_SPEEDUP}x the cold arm's {cold.simulated_qps:.0f} qps"
    )

    # Arm 3: jobs2-warm — two concurrent passes in spawned interpreters
    # over the disk tier primed above (the --jobs N execution shape).
    jobs_completed, jobs_wall_s, outcomes = run_jobs_arm(str(memo_dir), workers=2)
    for worker_completed, _, worker_p99_ms in outcomes:
        assert worker_completed == cold.completed
        assert worker_p99_ms == cold.p99_ms

    merged = engine_scoreboard(
        "engine", scoreboard_entries(cold, warm, jobs_completed, jobs_wall_s)
    )
    arms = {entry["arm"]: entry for entry in merged}
    print()
    for arm in ("serial-cold", "serial-warm", "jobs2-warm"):
        entry = arms[arm]
        print(
            f"{arm:12s} {entry['simulated_qps']:>9.1f} simulated qps  "
            f"({entry['wall_s']:.3f} s, {entry['queries']} queries, "
            f"{entry['speedup_vs_cold']:.2f}x vs cold)"
        )
