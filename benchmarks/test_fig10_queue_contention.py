"""Figure 10: SDK-mutex vs lock-free task queue under contention.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig10.txt``.
"""


def test_fig10(run_figure):
    report = run_figure("fig10")
    ratio = report.value("SGX + mutex queue", "throughput") / report.value(
        "SGX + lock-free queue", "throughput")
    assert ratio < 0.4  # paper: 0.25
