"""Extension: bit-packed SIMD scan throughput vs code width."""


def test_ext02(run_figure):
    report = run_figure("ext02")
    # Narrow codes multiply the values/s rate of the bandwidth-bound scan.
    assert report.value("SGX (Data in Enclave)", 4) > 2.5 * report.value(
        "SGX (Data in Enclave)", 32
    )
    # The enclave penalty stays within a few percent at every width.
    for bits in (4, 16, 32):
        rel = report.value("SGX (Data in Enclave)", bits) / report.value(
            "Plain CPU", bits
        )
        assert rel > 0.95
