"""Figure 13: scan thread scaling to the bandwidth limit.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig13.txt``.
"""


def test_fig13(run_figure):
    report = run_figure("fig13")
    assert report.value("SGX (Data in Enclave)", 16) > 0.9 * report.value("Plain CPU", 16)
