"""Figure 12: single-threaded SIMD scan, three settings.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig12.txt``.
"""


def test_fig12(run_figure):
    report = run_figure("fig12")
    rel = report.value("SGX (Data in Enclave)", 4e9) / report.value("Plain CPU", 4e9)
    assert 0.95 < rel < 0.99  # paper: ~3 % slowdown
