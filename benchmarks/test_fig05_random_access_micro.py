"""Figure 5: pointer-chase reads and LCG writes, SGX relative.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig05.txt``.
"""


def test_fig05(run_figure):
    report = run_figure("fig05")
    assert report.value("random reads (pointer chase)", 16e9) < 0.6
    assert report.value("random writes (LCG)", 8e9) < 0.45
