"""Extension: the join lineup on an SGXv1-class platform (EPC paging).

Regenerates the premise behind the paper: on first-generation SGX the
cache-optimized joins collapse under EPC paging and CrkJoin wins; on SGXv2
the ordering inverts.
"""


def test_ext01(run_figure):
    report = run_figure("ext01")
    # SGXv1: CrkJoin's paging avoidance wins.
    crk_v1 = report.value("SGXv1 enclave", "CrkJoin")
    assert crk_v1 > report.value("SGXv1 enclave", "RHO")
    assert crk_v1 > report.value("SGXv1 enclave", "PHT")
    # SGXv2: the ordering inverts decisively (Fig. 3).
    assert report.value("SGXv2 enclave", "RHO") > 5 * report.value(
        "SGXv2 enclave", "CrkJoin"
    )
    # The paper's "orders of magnitude" SGXv1 slowdowns for standard joins.
    assert report.value("SGXv2 enclave", "PHT") > 50 * report.value(
        "SGXv1 enclave", "PHT"
    )
