"""Ablation: radix fan-out — partitions must land in cache.

Sweeps the RHO radix bits around the auto-chosen value.  Too few bits leave
partitions (and their hash tables) DRAM-resident, re-exposing the random
access penalties of Sec. 4.1; too many bits shrink tasks until queue and
scatter-state overheads eat the gains.  The auto-chosen fan-out should sit
near the optimum inside the enclave.
"""

from repro.bench.report import ExperimentReport
from repro.core.joins import RadixJoin
from repro.enclave.runtime import ExecutionSetting
from repro.machine import SimMachine
from repro.memory.access import CodeVariant
from repro.tables import generate_join_relation_pair

BIT_SWEEP = (2, 4, 6, 8, 10, 12, 14)


def run_ablation() -> ExperimentReport:
    report = ExperimentReport(
        "ablation-radix-bits",
        "RHO radix-bit sweep inside the enclave (optimized variant)",
        "Sec. 4.1/4.2 (design-choice ablation)",
    )
    build, probe = generate_join_relation_pair(
        100e6, 400e6, seed=29, physical_row_cap=150_000
    )
    auto_bits = RadixJoin().choose_radix_bits(build)
    for bits in BIT_SWEEP:
        machine = SimMachine()
        join = RadixJoin(CodeVariant.UNROLLED, radix_bits=bits)
        with machine.context(
            ExecutionSetting.sgx_data_in_enclave(), threads=16
        ) as ctx:
            result = join.run(ctx, build, probe)
        report.add(
            "SGX optimized RHO", bits,
            result.throughput_rows_per_s(machine.frequency_hz) / 1e6,
            "M rows/s",
        )
    report.notes.append(f"auto-chosen fan-out: {auto_bits} bits")
    return report


def test_ablation_radix_bits(benchmark, results_dir):
    report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    (results_dir / "ablation_radix_bits.txt").write_text(
        report.print_table() + "\n"
    )
    print()
    print(report.print_table())
    values = {row.x: row.value for row in report.series("SGX optimized RHO")}
    # Too-coarse partitioning (2 bits -> 25 MB partitions, DRAM-resident
    # hash tables) must lose against the cache-sized auto choice.
    assert values[2] < 0.8 * values[8]
    # Diminishing returns beyond the cache-sized auto choice: deeper
    # fan-outs buy less than 10 % more.
    assert max(values.values()) < 1.10 * values[8]
