"""Figure 3: five joins, plain CPU vs SGX data-in-enclave.

Regenerates the paper artifact; the rendered table lands in
``benchmarks/results/fig03.txt``.
"""


def test_fig03(run_figure):
    report = run_figure("fig03")
    crk = report.value("SGX (Data in Enclave)", "CrkJoin")
    assert report.value("SGX (Data in Enclave)", "RHO") / crk > 8
